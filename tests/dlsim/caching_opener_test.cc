#include "dlsim/caching_opener.h"

#include <gtest/gtest.h>

#include <memory>

#include "../test_support.h"
#include "storage/memory_engine.h"
#include "tfrecord/reader.h"
#include "tfrecord/writer.h"

namespace monarch::dlsim {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

class CachingOpenerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    source_ = std::make_shared<storage::MemoryEngine>("src");
    cache_ = std::make_shared<storage::MemoryEngine>("cache");
    ASSERT_OK(source_->Write("f", Bytes("record-file-bytes")));
    auto opener = CachingOpener::Create(source_, cache_, 17, 1000);
    ASSERT_OK(opener);
    opener_ = std::move(opener).value();
  }

  /// Read `path` fully through the opener in small chunks.
  std::string DrainFile(const std::string& path) {
    auto src = opener_->Open(path);
    EXPECT_TRUE(src.ok());
    std::string out;
    std::vector<std::byte> buf(5);
    std::uint64_t offset = 0;
    for (;;) {
      auto n = (*src)->ReadAt(offset, buf);
      EXPECT_TRUE(n.ok());
      if (n.value() == 0) break;
      out += Text(buf).substr(0, n.value());
      offset += n.value();
    }
    return out;
  }

  std::shared_ptr<storage::MemoryEngine> source_;
  std::shared_ptr<storage::MemoryEngine> cache_;
  RecordFileOpenerPtr opener_;
};

TEST_F(CachingOpenerTest, RejectsOversizedDataset) {
  // The paper's 200 GiB case: Dataset.cache refuses when the dataset
  // exceeds the cache medium.
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      CachingOpener::Create(source_, cache_, /*dataset=*/2000,
                            /*capacity=*/1000));
}

TEST_F(CachingOpenerTest, Epoch1ReadsFromSourceAndFillsCache) {
  opener_->OnEpochStart(1);
  EXPECT_EQ("record-file-bytes", DrainFile("f"));
  // Fully-consumed file was flushed to the cache.
  ASSERT_TRUE(cache_->Exists("f").value());
  std::vector<std::byte> cached(17);
  ASSERT_OK(cache_->Read("f", 0, cached));
  EXPECT_EQ("record-file-bytes", Text(cached));
  EXPECT_GT(source_->Stats().Snapshot().read_ops, 0u);
}

TEST_F(CachingOpenerTest, Epoch2ServedEntirelyFromCache) {
  opener_->OnEpochStart(1);
  DrainFile("f");
  const auto source_reads_after_e1 = source_->Stats().Snapshot().read_ops;

  opener_->OnEpochStart(2);
  EXPECT_EQ("record-file-bytes", DrainFile("f"));
  EXPECT_EQ(source_reads_after_e1, source_->Stats().Snapshot().read_ops)
      << "epoch 2 must not touch the source backend";
  EXPECT_GT(cache_->Stats().Snapshot().read_ops, 0u);
}

TEST_F(CachingOpenerTest, PartiallyConsumedFileNotCached) {
  opener_->OnEpochStart(1);
  auto src = opener_->Open("f");
  ASSERT_OK(src);
  std::vector<std::byte> buf(5);
  ASSERT_OK((*src)->ReadAt(0, buf));  // only the first 5 bytes
  EXPECT_FALSE(cache_->Exists("f").value())
      << "cache finalises only fully-consumed files (TF semantics)";
}

TEST_F(CachingOpenerTest, SizeComesFromSource) {
  auto src = opener_->Open("f");
  ASSERT_OK(src);
  EXPECT_EQ(17u, (*src)->Size().value());
}

TEST_F(CachingOpenerTest, WorksWithTFRecordReader) {
  // End-to-end with the real record framing: write a record file to the
  // source, stream it through the caching opener twice.
  tfrecord::TFRecordWriter writer;
  writer.Append(Bytes("sample-a"));
  writer.Append(Bytes("sample-b"));
  ASSERT_OK(writer.Flush(*source_, "records"));
  auto opener = CachingOpener::Create(
      source_, cache_, source_->FileSize("records").value(), 1 << 20);
  ASSERT_OK(opener);

  for (int epoch = 1; epoch <= 2; ++epoch) {
    (*opener)->OnEpochStart(epoch);
    auto src = (*opener)->Open("records");
    ASSERT_OK(src);
    tfrecord::TFRecordReader reader(**src);
    EXPECT_EQ("sample-a", Text(reader.ReadRecord().value()));
    EXPECT_EQ("sample-b", Text(reader.ReadRecord().value()));
    EXPECT_STATUS_CODE(StatusCode::kOutOfRange, reader.ReadRecord());
  }
  EXPECT_TRUE(cache_->Exists("records").value());
}

}  // namespace
}  // namespace monarch::dlsim
