#include "dlsim/data_loader.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "../test_support.h"
#include "core/monarch.h"
#include "core/read_ring.h"
#include "dlsim/monarch_opener.h"
#include "storage/faulty_engine.h"
#include "storage/memory_engine.h"
#include "workload/dataset_generator.h"
#include "workload/trace.h"

namespace monarch::dlsim {
namespace {

class DataLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_shared<storage::MemoryEngine>();
    spec_ = workload::DatasetSpec::Tiny();
    auto manifest = workload::GenerateDataset(*engine_, spec_);
    ASSERT_OK(manifest);
    files_ = manifest.value().file_paths;
  }

  LoaderConfig FastConfig() {
    LoaderConfig config;
    config.reader_threads = 3;
    config.prefetch_samples = 16;
    config.read_chunk_bytes = 2048;
    config.shuffle_seed = 5;
    return config;
  }

  std::shared_ptr<storage::MemoryEngine> engine_;
  workload::DatasetSpec spec_;
  std::vector<std::string> files_;
};

TEST_F(DataLoaderTest, ProducesEverySampleExactlyOnce) {
  EngineOpener opener(engine_);
  ResourceMonitor monitor(3, 1);
  EpochLoader loader(files_, /*epoch=*/1, opener, monitor, FastConfig());

  // Each generated sample carries its (file, sample) identity at bytes
  // [4,20); collect them all and verify the multiset is exactly the
  // dataset.
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::uint64_t count = 0;
  while (auto sample = loader.queue().Pop()) {
    ASSERT_GE(sample->payload.size(), 20u);
    std::uint64_t file = 0;
    std::uint64_t idx = 0;
    for (int i = 7; i >= 0; --i) {
      file = (file << 8) |
             std::to_integer<std::uint64_t>(sample->payload[4 + i]);
      idx = (idx << 8) |
            std::to_integer<std::uint64_t>(sample->payload[12 + i]);
    }
    EXPECT_TRUE(seen.emplace(file, idx).second)
        << "duplicate sample " << file << "/" << idx;
    ++count;
  }
  loader.Finish();
  ASSERT_OK(loader.status());
  EXPECT_EQ(spec_.total_samples(), count);
  EXPECT_EQ(spec_.total_samples(), loader.samples_produced());
  EXPECT_EQ(spec_.num_files, loader.files_read());
}

TEST_F(DataLoaderTest, ShuffleOrderDiffersAcrossEpochsButIsSeeded) {
  auto file_order = [&](int epoch, std::uint64_t seed) {
    auto recorder = std::make_unique<workload::TraceRecorder>();
    auto traced = std::make_shared<workload::TracingEngine>(engine_, *recorder);
    EngineOpener opener(traced);
    ResourceMonitor monitor(1, 1);
    LoaderConfig config = FastConfig();
    config.reader_threads = 1;  // single reader -> deterministic order
    config.shuffle_seed = seed;
    EpochLoader loader(files_, epoch, opener, monitor, config);
    while (loader.queue().Pop().has_value()) {
    }
    loader.Finish();
    std::vector<std::string> order;
    for (const auto& ev : recorder->Drain()) {
      if (ev.op == workload::TraceOp::kRead &&
          (order.empty() || order.back() != ev.path)) {
        order.push_back(ev.path);
      }
    }
    return order;
  };

  const auto epoch1 = file_order(1, 7);
  const auto epoch2 = file_order(2, 7);
  const auto epoch1_again = file_order(1, 7);
  const auto epoch1_other_seed = file_order(1, 8);

  EXPECT_EQ(epoch1, epoch1_again) << "same seed+epoch => same order";
  EXPECT_NE(epoch1, epoch2) << "reshuffle each epoch";
  EXPECT_NE(epoch1, epoch1_other_seed) << "seed changes order";
}

TEST_F(DataLoaderTest, ReaderErrorSurfacesViaStatus) {
  auto faulty = std::make_shared<storage::FaultyEngine>(
      engine_, storage::FaultyEngine::FaultSpec{});
  faulty->FailNextReads(1);
  EngineOpener opener(faulty);
  ResourceMonitor monitor(3, 1);
  EpochLoader loader(files_, 1, opener, monitor, FastConfig());
  while (loader.queue().Pop().has_value()) {
  }
  loader.Finish();
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, loader.status());
}

TEST_F(DataLoaderTest, CorruptFileReportsDataLoss) {
  // Corrupt one record file on the engine.
  const std::string& victim = files_[0];
  std::vector<std::byte> raw(engine_->FileSize(victim).value());
  ASSERT_OK(engine_->Read(victim, 0, raw));
  raw[30] ^= std::byte{0xFF};
  ASSERT_OK(engine_->Write(victim, raw));

  EngineOpener opener(engine_);
  ResourceMonitor monitor(3, 1);
  EpochLoader loader(files_, 1, opener, monitor, FastConfig());
  while (loader.queue().Pop().has_value()) {
  }
  loader.Finish();
  EXPECT_STATUS_CODE(StatusCode::kDataLoss, loader.status());
}

TEST_F(DataLoaderTest, ConsumerAbortViaQueueCloseStopsReaders) {
  EngineOpener opener(engine_);
  ResourceMonitor monitor(3, 1);
  LoaderConfig config = FastConfig();
  config.prefetch_samples = 2;  // small queue so producers block
  EpochLoader loader(files_, 1, opener, monitor, config);
  // Consume a couple of samples, then abandon the epoch.
  loader.queue().Pop();
  loader.queue().Pop();
  loader.queue().Close();
  loader.Finish();  // must not deadlock
  SUCCEED();
}

TEST_F(DataLoaderTest, PreprocessCostAccountedAsCpu) {
  EngineOpener opener(engine_);
  ResourceMonitor monitor(3, 1);
  LoaderConfig config = FastConfig();
  config.preprocess_per_sample = Micros(200);
  const Stopwatch wall;
  EpochLoader loader(files_, 1, opener, monitor, config);
  std::uint64_t n = 0;
  while (loader.queue().Pop().has_value()) ++n;
  loader.Finish();
  const auto report = monitor.Report(wall.Elapsed());
  // 32 samples x 200us spread over 3 reader threads: CPU busy must be
  // visible (> 0) and bounded by 1.
  EXPECT_GT(report.cpu, 0.0);
  EXPECT_LE(report.cpu, 1.0);
  EXPECT_EQ(spec_.total_samples(), n);
}

TEST_F(DataLoaderTest, RingFedLoaderProducesEverySampleExactlyOnce) {
  // Same exactly-once contract as the sync path, but pumped through
  // MONARCH's async ReadRing: whole-file lease reads, records parsed
  // straight out of the lent pages (DESIGN.md "Async read path").
  auto local = std::make_shared<storage::MemoryEngine>("local");
  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{"local", local, 1ULL << 20});
  config.pfs = core::TierSpec{"pfs", engine_, 0};
  config.dataset_dir = spec_.directory;
  config.placement.num_threads = 2;
  auto monarch = core::Monarch::Create(std::move(config));
  ASSERT_OK(monarch);

  MonarchOpener opener(**monarch);
  ResourceMonitor monitor(3, 1);
  LoaderConfig loader_config = FastConfig();
  loader_config.use_read_ring = true;
  loader_config.ring_window = 2;
  EpochLoader loader(files_, /*epoch=*/1, opener, monitor, loader_config);

  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::uint64_t count = 0;
  while (auto sample = loader.queue().Pop()) {
    ASSERT_GE(sample->payload.size(), 20u);
    std::uint64_t file = 0;
    std::uint64_t idx = 0;
    for (int i = 7; i >= 0; --i) {
      file = (file << 8) |
             std::to_integer<std::uint64_t>(sample->payload[4 + i]);
      idx = (idx << 8) |
            std::to_integer<std::uint64_t>(sample->payload[12 + i]);
    }
    EXPECT_TRUE(seen.emplace(file, idx).second)
        << "duplicate sample " << file << "/" << idx;
    ++count;
  }
  loader.Finish();
  ASSERT_OK(loader.status());
  EXPECT_EQ(spec_.total_samples(), count);
  EXPECT_EQ(spec_.num_files, loader.files_read());
  // Every file went through the ring as a lease op.
  const auto ring_stats = monarch.value()->read_ring().Stats();
  EXPECT_GE(ring_stats.completed, static_cast<std::uint64_t>(spec_.num_files));
  monarch.value()->DrainPlacements();
  monarch.value()->Shutdown();
}

TEST_F(DataLoaderTest, EmptyFileListProducesNothing) {
  EngineOpener opener(engine_);
  ResourceMonitor monitor(1, 1);
  EpochLoader loader({}, 1, opener, monitor, FastConfig());
  EXPECT_FALSE(loader.queue().Pop().has_value());
  loader.Finish();
  ASSERT_OK(loader.status());
  EXPECT_EQ(0u, loader.samples_produced());
}

}  // namespace
}  // namespace monarch::dlsim
