// Integration tests: run the full training simulation end-to-end for each
// experimental setup on a miniature dataset over real temp directories,
// and check the *behavioural* claims (who reads what from where) rather
// than timing. Device contention is disabled so the tests are fast and
// deterministic.
#include "dlsim/setups.h"

#include <gtest/gtest.h>

#include "../test_support.h"
#include "storage/throttled_engine.h"

namespace monarch::dlsim {
namespace {

using monarch::testing::TempDir;

class SetupsIntegrationTest : public ::testing::Test {
 protected:
  SetupsIntegrationTest() : dir_("setups") {}

  ExperimentConfig MiniConfig() {
    ExperimentConfig config;
    config.dataset = workload::DatasetSpec::Tiny();
    config.model.name = "mini";
    config.model.step_time = Micros(200);
    config.model.preprocess_per_sample = Micros(20);
    config.epochs = 2;
    config.batch_size = 8;
    config.num_gpus = 2;
    config.reader_threads = 2;
    config.read_chunk_bytes = 2048;
    config.local_quota_bytes = 10ULL * 1024 * 1024;
    config.placement_threads = 2;
    config.run_seed = 3;
    config.contended_pfs = false;
    return config;
  }

  storage::IoStatsSnapshot Stats(const storage::StorageEnginePtr& engine) {
    return engine ? engine->Stats().Snapshot() : storage::IoStatsSnapshot{};
  }

  TempDir dir_;
};

TEST_F(SetupsIntegrationTest, VanillaLustreReadsEverythingFromPfs) {
  auto setup = MakeVanillaLustreSetup(dir_.Sub("pfs"), MiniConfig());
  ASSERT_OK(setup);
  auto result = setup.value().trainer->Train();
  ASSERT_OK(result);
  ASSERT_EQ(2u, result.value().epochs.size());
  EXPECT_EQ(MiniConfig().dataset.total_samples(),
            result.value().epochs[0].samples);

  const auto pfs = Stats(setup.value().pfs_engine);
  EXPECT_GT(pfs.read_ops, 0u);
  // Both epochs hit the PFS equally (no caching anywhere).
  EXPECT_EQ(nullptr, setup.value().local_engine);
}

TEST_F(SetupsIntegrationTest, VanillaLocalNeverTouchesPfsDuringTraining) {
  auto setup = MakeVanillaLocalSetup(dir_.Sub("pfs"), dir_.Sub("local"),
                                     MiniConfig());
  ASSERT_OK(setup);
  auto result = setup.value().trainer->Train();
  ASSERT_OK(result);
  EXPECT_EQ(nullptr, setup.value().pfs_engine);
  EXPECT_GT(Stats(setup.value().local_engine).read_ops, 0u);
}

TEST_F(SetupsIntegrationTest, VanillaLocalRejectsOversizedDataset) {
  auto config = MiniConfig();
  config.local_quota_bytes = 1024;  // dataset will not fit
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      MakeVanillaLocalSetup(dir_.Sub("pfs"), dir_.Sub("local"), config));
}

TEST_F(SetupsIntegrationTest, VanillaCachingShiftsLoadAfterEpoch1) {
  auto setup = MakeVanillaCachingSetup(dir_.Sub("pfs"), dir_.Sub("local"),
                                       MiniConfig());
  ASSERT_OK(setup);

  // Epoch boundaries are driven by the trainer; capture PFS reads after
  // the full 2-epoch run. Epoch 2 must add no PFS reads.
  auto result = setup.value().trainer->Train();
  ASSERT_OK(result);

  const auto pfs = Stats(setup.value().pfs_engine);
  const auto local = Stats(setup.value().local_engine);
  EXPECT_GT(pfs.read_ops, 0u) << "epoch 1 reads the PFS";
  EXPECT_GT(local.write_ops, 0u) << "epoch 1 writes the cache";
  EXPECT_GT(local.read_ops, 0u) << "epoch 2 reads the cache";

  // Every dataset file landed in the cache.
  auto cached = setup.value().local_engine->ListFiles(
      MiniConfig().dataset.directory);
  ASSERT_OK(cached);
  EXPECT_EQ(MiniConfig().dataset.num_files, cached.value().size());
}

TEST_F(SetupsIntegrationTest, VanillaCachingRejectsOversizedDataset) {
  auto config = MiniConfig();
  config.local_quota_bytes = 1024;
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      MakeVanillaCachingSetup(dir_.Sub("pfs"), dir_.Sub("local"), config));
}

TEST_F(SetupsIntegrationTest, MonarchStagesDatasetAndShiftsReads) {
  auto setup =
      MakeMonarchSetup(dir_.Sub("pfs"), dir_.Sub("local"), MiniConfig());
  ASSERT_OK(setup);
  ASSERT_NE(nullptr, setup.value().monarch);

  auto result = setup.value().trainer->Train();
  ASSERT_OK(result);
  setup.value().monarch->DrainPlacements();

  const auto stats = setup.value().monarch->Stats();
  // Dataset fits: every file placed during epoch 1.
  EXPECT_EQ(MiniConfig().dataset.num_files, stats.placement.completed);
  EXPECT_EQ(0u, stats.placement.rejected_no_space);
  // Level 0 served reads (epoch 2 at minimum).
  EXPECT_GT(stats.levels[0].reads, 0u);
  EXPECT_GT(stats.levels[1].reads, 0u);
  // Samples all delivered in both epochs.
  for (const auto& epoch : result.value().epochs) {
    EXPECT_EQ(MiniConfig().dataset.total_samples(), epoch.samples);
  }
}

TEST_F(SetupsIntegrationTest, MonarchPartialCacheKeepsWorking) {
  auto config = MiniConfig();
  // Quota for roughly half the tiny dataset.
  config.local_quota_bytes = 40 * 1024;
  auto setup = MakeMonarchSetup(dir_.Sub("pfs"), dir_.Sub("local"), config);
  ASSERT_OK(setup);

  auto result = setup.value().trainer->Train();
  ASSERT_OK(result);
  setup.value().monarch->DrainPlacements();

  const auto stats = setup.value().monarch->Stats();
  EXPECT_GT(stats.placement.completed, 0u);
  EXPECT_GT(stats.placement.rejected_no_space, 0u);
  EXPECT_LE(stats.levels[0].occupancy_bytes, config.local_quota_bytes);
  // Epoch 2 still reads partly from the PFS (the 200 GiB shape).
  EXPECT_GT(stats.levels[1].reads, 0u);
  for (const auto& epoch : result.value().epochs) {
    EXPECT_EQ(config.dataset.total_samples(), epoch.samples);
  }
}

TEST_F(SetupsIntegrationTest, MonarchReducesPfsOpsVersusVanilla) {
  // The paper's headline: MONARCH cuts I/O operations to the PFS. Compare
  // total PFS read ops across identical 2-epoch runs.
  auto vanilla = MakeVanillaLustreSetup(dir_.Sub("pfs_v"), MiniConfig());
  ASSERT_OK(vanilla);
  ASSERT_OK(vanilla.value().trainer->Train());
  const auto vanilla_pfs = Stats(vanilla.value().pfs_engine);

  auto monarch =
      MakeMonarchSetup(dir_.Sub("pfs_m"), dir_.Sub("local_m"), MiniConfig());
  ASSERT_OK(monarch);
  ASSERT_OK(monarch.value().trainer->Train());
  const auto monarch_pfs = Stats(monarch.value().pfs_engine);

  EXPECT_LT(monarch_pfs.read_ops, vanilla_pfs.read_ops)
      << "MONARCH must reduce PFS read operations";
}

TEST_F(SetupsIntegrationTest, EnsureDatasetIsIdempotent) {
  const auto spec = workload::DatasetSpec::Tiny();
  auto first = EnsureDataset(dir_.Sub("pfs"), spec);
  ASSERT_OK(first);
  auto second = EnsureDataset(dir_.Sub("pfs"), spec);
  ASSERT_OK(second);
  EXPECT_EQ(first.value().total_bytes, second.value().total_bytes);
  EXPECT_EQ(first.value().file_paths, second.value().file_paths);
}

}  // namespace
}  // namespace monarch::dlsim
