#include "dlsim/map_style_loader.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "../test_support.h"
#include "core/monarch.h"
#include "dlsim/monarch_opener.h"
#include "storage/memory_engine.h"
#include "workload/dataset_generator.h"

namespace monarch::dlsim {
namespace {

class MapStyleLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_shared<storage::MemoryEngine>();
    spec_ = workload::DatasetSpec::Tiny();
    auto manifest = workload::GenerateDataset(*engine_, spec_);
    ASSERT_OK(manifest);
    files_ = manifest.value().file_paths;
  }

  MapLoaderConfig FastConfig() {
    MapLoaderConfig config;
    config.num_workers = 3;
    config.prefetch_samples = 16;
    config.shuffle_seed = 9;
    return config;
  }

  /// (file, sample) identity pairs embedded by the dataset generator.
  static std::pair<std::uint64_t, std::uint64_t> Identity(
      const Sample& sample) {
    std::uint64_t file = 0;
    std::uint64_t idx = 0;
    for (int i = 7; i >= 0; --i) {
      file = (file << 8) |
             std::to_integer<std::uint64_t>(sample.payload[4 + i]);
      idx = (idx << 8) |
            std::to_integer<std::uint64_t>(sample.payload[12 + i]);
    }
    return {file, idx};
  }

  std::shared_ptr<storage::MemoryEngine> engine_;
  workload::DatasetSpec spec_;
  std::vector<std::string> files_;
};

TEST_F(MapStyleLoaderTest, IndexCountsEverySample) {
  EngineOpener opener(engine_);
  auto dataset = IndexedDataset::Build(files_, opener);
  ASSERT_OK(dataset);
  EXPECT_EQ(spec_.total_samples(), dataset->size());
  EXPECT_EQ(files_.size(), dataset->files().size());
}

TEST_F(MapStyleLoaderTest, EpochDeliversEverySampleExactlyOnce) {
  EngineOpener opener(engine_);
  auto dataset = IndexedDataset::Build(files_, opener);
  ASSERT_OK(dataset);

  ResourceMonitor monitor(3, 1);
  MapStyleEpoch epoch(*dataset, 1, opener, monitor, FastConfig());
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  while (auto sample = epoch.queue().Pop()) {
    EXPECT_TRUE(seen.insert(Identity(*sample)).second) << "duplicate sample";
  }
  epoch.Finish();
  ASSERT_OK(epoch.status());
  EXPECT_EQ(spec_.total_samples(), seen.size());
  EXPECT_EQ(spec_.total_samples(), epoch.samples_produced());
}

TEST_F(MapStyleLoaderTest, PermutationIsSampleLevelAndSeeded) {
  EngineOpener opener(engine_);
  auto dataset = IndexedDataset::Build(files_, opener);
  ASSERT_OK(dataset);
  ResourceMonitor monitor(1, 1);

  auto order = [&](int epoch_num, std::uint64_t seed) {
    MapLoaderConfig config = FastConfig();
    config.num_workers = 1;  // deterministic consumption order
    config.shuffle_seed = seed;
    MapStyleEpoch epoch(*dataset, epoch_num, opener, monitor, config);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    while (auto sample = epoch.queue().Pop()) out.push_back(Identity(*sample));
    epoch.Finish();
    return out;
  };

  const auto e1 = order(1, 5);
  EXPECT_EQ(e1, order(1, 5)) << "same (seed, epoch) => same order";
  EXPECT_NE(e1, order(2, 5)) << "new epoch => new permutation";
  EXPECT_NE(e1, order(1, 6)) << "new seed => new permutation";

  // Sample-level shuffling: consecutive samples should frequently come
  // from different files (file-level shuffling would keep runs of 4).
  int file_switches = 0;
  for (std::size_t i = 1; i < e1.size(); ++i) {
    if (e1[i].first != e1[i - 1].first) ++file_switches;
  }
  EXPECT_GT(file_switches, static_cast<int>(e1.size() / 2));
}

TEST_F(MapStyleLoaderTest, CorruptSampleSurfacesDataLoss) {
  EngineOpener opener(engine_);
  auto dataset = IndexedDataset::Build(files_, opener);
  ASSERT_OK(dataset);

  // Corrupt one payload byte of one file (past header+identity region).
  std::vector<std::byte> raw(engine_->FileSize(files_[0]).value());
  ASSERT_OK(engine_->Read(files_[0], 0, raw));
  raw[40] ^= std::byte{0x10};
  ASSERT_OK(engine_->Write(files_[0], raw));

  ResourceMonitor monitor(2, 1);
  MapStyleEpoch epoch(*dataset, 1, opener, monitor, FastConfig());
  while (epoch.queue().Pop().has_value()) {
  }
  epoch.Finish();
  EXPECT_STATUS_CODE(StatusCode::kDataLoss, epoch.status());
}

TEST_F(MapStyleLoaderTest, WorksThroughMonarchAndStagesFromRandomReads) {
  // The §VI PyTorch case end-to-end: every read is a partial random
  // access, yet the full-file fetch stages the whole dataset in epoch 1.
  auto local = std::make_shared<storage::MemoryEngine>("local");
  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{"local", local, 1ULL << 20});
  config.pfs = core::TierSpec{"pfs", engine_, 0};
  config.dataset_dir = spec_.directory;
  config.placement.num_threads = 2;
  auto monarch = core::Monarch::Create(std::move(config));
  ASSERT_OK(monarch);

  MonarchOpener opener(**monarch);
  auto dataset = IndexedDataset::Build(files_, opener);
  ASSERT_OK(dataset);
  ResourceMonitor monitor(3, 1);

  for (int e = 1; e <= 2; ++e) {
    MapStyleEpoch epoch(*dataset, e, opener, monitor, FastConfig());
    std::uint64_t n = 0;
    while (epoch.queue().Pop().has_value()) ++n;
    epoch.Finish();
    ASSERT_OK(epoch.status());
    EXPECT_EQ(spec_.total_samples(), n) << "epoch " << e;
    monarch.value()->DrainPlacements();
  }

  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(spec_.num_files, stats.placement.completed)
      << "partial random reads must still stage whole files";
  EXPECT_GT(stats.levels[0].reads, 0u) << "epoch 2 served locally";
}

TEST_F(MapStyleLoaderTest, ConsumerAbortDoesNotDeadlock) {
  EngineOpener opener(engine_);
  auto dataset = IndexedDataset::Build(files_, opener);
  ASSERT_OK(dataset);
  ResourceMonitor monitor(3, 1);
  MapLoaderConfig config = FastConfig();
  config.prefetch_samples = 2;
  MapStyleEpoch epoch(*dataset, 1, opener, monitor, config);
  epoch.queue().Pop();
  epoch.queue().Close();
  epoch.Finish();
  SUCCEED();
}

}  // namespace
}  // namespace monarch::dlsim
