#include "dlsim/resource_monitor.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace monarch::dlsim {
namespace {

TEST(ResourceMonitorTest, NoActivityIsZeroUtilisation) {
  ResourceMonitor monitor(4, 2);
  const auto report = monitor.Report(Millis(100));
  EXPECT_DOUBLE_EQ(0.0, report.cpu);
  EXPECT_DOUBLE_EQ(0.0, report.gpu);
  EXPECT_EQ(0, report.peak_memory_bytes);
}

TEST(ResourceMonitorTest, ZeroWallIsSafe) {
  ResourceMonitor monitor(1, 1);
  monitor.AddBusy(Resource::kCpu, Millis(5));
  const auto report = monitor.Report(kZeroDuration);
  EXPECT_DOUBLE_EQ(0.0, report.cpu);
}

TEST(ResourceMonitorTest, UtilisationIsBusyOverSlotTime) {
  ResourceMonitor monitor(/*cpu_slots=*/4, /*gpu_slots=*/2);
  // 200ms busy across 4 CPU slots over a 100ms window: 50%.
  monitor.AddBusy(Resource::kCpu, Millis(200));
  // 100ms of GPU busy on 2 GPUs over 100ms: 50%.
  monitor.AddBusy(Resource::kGpu, Millis(100));
  const auto report = monitor.Report(Millis(100));
  EXPECT_NEAR(0.5, report.cpu, 1e-9);
  EXPECT_NEAR(0.5, report.gpu, 1e-9);
}

TEST(ResourceMonitorTest, MemoryPeakTracksHighWater) {
  ResourceMonitor monitor(1, 1);
  monitor.AddMemory(100);
  monitor.AddMemory(200);
  monitor.AddMemory(-250);
  monitor.AddMemory(50);
  const auto report = monitor.Report(Millis(10));
  EXPECT_EQ(300, report.peak_memory_bytes);
}

TEST(ResourceMonitorTest, ResetKeepsCurrentMemoryAsNewPeak) {
  ResourceMonitor monitor(1, 1);
  monitor.AddMemory(500);
  monitor.AddMemory(-400);  // current 100, peak 500
  monitor.Reset();
  EXPECT_EQ(100, monitor.Report(Millis(1)).peak_memory_bytes);
}

TEST(ResourceMonitorTest, ConcurrentAccountingSums) {
  ResourceMonitor monitor(8, 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&monitor] {
      for (int i = 0; i < 1000; ++i) {
        monitor.AddBusy(Resource::kCpu, Micros(10));
        monitor.AddMemory(1);
        monitor.AddMemory(-1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // 8 threads x 1000 x 10us = 80ms across 8 slots over a 10ms window = 1.0
  const auto report = monitor.Report(Millis(10));
  EXPECT_NEAR(1.0, report.cpu, 1e-9);
}

}  // namespace
}  // namespace monarch::dlsim
