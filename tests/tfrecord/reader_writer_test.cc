#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../test_support.h"
#include "storage/memory_engine.h"
#include "tfrecord/format.h"
#include "tfrecord/index.h"
#include "tfrecord/reader.h"
#include "tfrecord/writer.h"
#include "util/rng.h"

namespace monarch::tfrecord {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

std::vector<std::byte> RandomPayload(Xoshiro256& rng, std::size_t size) {
  std::vector<std::byte> payload(size);
  for (auto& b : payload) b = static_cast<std::byte>(rng() & 0xFF);
  return payload;
}

class ReaderWriterTest : public ::testing::Test {
 protected:
  ReaderWriterTest() : engine_(std::make_shared<storage::MemoryEngine>()) {}

  /// Write `payloads` as one record file and return a source for it.
  EngineSource WriteFile(const std::vector<std::vector<std::byte>>& payloads,
                         const std::string& path = "file.tfrecord") {
    TFRecordWriter writer;
    for (const auto& p : payloads) writer.Append(p);
    EXPECT_EQ(payloads.size(), writer.record_count());
    EXPECT_TRUE(writer.Flush(*engine_, path).ok());
    return EngineSource(engine_, path);
  }

  std::shared_ptr<storage::MemoryEngine> engine_;
};

TEST_F(ReaderWriterTest, SingleRecordRoundTrips) {
  auto source = WriteFile({Bytes("hello tfrecord")});
  TFRecordReader reader(source);
  auto record = reader.ReadRecord();
  ASSERT_OK(record);
  EXPECT_EQ("hello tfrecord", Text(record.value()));
  EXPECT_STATUS_CODE(StatusCode::kOutOfRange, reader.ReadRecord());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(1u, reader.records_read());
}

TEST_F(ReaderWriterTest, ManyRecordsInOrder) {
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 100; ++i) {
    payloads.push_back(Bytes("record-" + std::to_string(i)));
  }
  auto source = WriteFile(payloads);
  TFRecordReader reader(source);
  for (int i = 0; i < 100; ++i) {
    auto record = reader.ReadRecord();
    ASSERT_OK(record);
    EXPECT_EQ("record-" + std::to_string(i), Text(record.value()));
  }
  EXPECT_STATUS_CODE(StatusCode::kOutOfRange, reader.ReadRecord());
}

TEST_F(ReaderWriterTest, EmptyPayloadIsLegal) {
  auto source = WriteFile({{}, Bytes("after-empty")});
  TFRecordReader reader(source);
  auto first = reader.ReadRecord();
  ASSERT_OK(first);
  EXPECT_TRUE(first.value().empty());
  EXPECT_EQ("after-empty", Text(reader.ReadRecord().value()));
}

TEST_F(ReaderWriterTest, EmptyFileEndsImmediately) {
  auto source = WriteFile({});
  TFRecordReader reader(source);
  EXPECT_STATUS_CODE(StatusCode::kOutOfRange, reader.ReadRecord());
}

TEST_F(ReaderWriterTest, UnbufferedModeMatchesBuffered) {
  Xoshiro256 rng(1);
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 20; ++i) {
    payloads.push_back(RandomPayload(rng, 100 + (rng() % 5000)));
  }
  auto source1 = WriteFile(payloads, "buffered");
  auto source2 = WriteFile(payloads, "unbuffered");

  TFRecordReader buffered(source1, {.buffer_bytes = 4096});
  TFRecordReader unbuffered(source2, {.buffer_bytes = 0});
  for (int i = 0; i < 20; ++i) {
    auto a = buffered.ReadRecord();
    auto b = unbuffered.ReadRecord();
    ASSERT_OK(a);
    ASSERT_OK(b);
    EXPECT_EQ(a.value(), b.value()) << "record " << i;
  }
}

TEST_F(ReaderWriterTest, BufferingReducesSourceReads) {
  std::vector<std::vector<std::byte>> payloads(50, Bytes("small"));
  WriteFile(payloads, "f");
  const auto baseline = engine_->Stats().Snapshot();

  {
    EngineSource source(engine_, "f");
    TFRecordReader reader(source, {.buffer_bytes = 0});
    while (reader.ReadRecord().ok()) {
    }
  }
  const auto unbuffered_reads =
      (engine_->Stats().Snapshot() - baseline).read_ops;

  const auto mid = engine_->Stats().Snapshot();
  {
    EngineSource source(engine_, "f");
    TFRecordReader reader(source, {.buffer_bytes = 64 * 1024});
    while (reader.ReadRecord().ok()) {
    }
  }
  const auto buffered_reads = (engine_->Stats().Snapshot() - mid).read_ops;

  // 50 records unbuffered = 100+ reads (header + payload each); buffered
  // fits the whole file in one chunk.
  EXPECT_GT(unbuffered_reads, 90u);
  EXPECT_LE(buffered_reads, 3u);
}

TEST_F(ReaderWriterTest, CorruptPayloadDetected) {
  WriteFile({Bytes("to-be-corrupted")}, "f");
  // Flip one payload byte on the stored file.
  std::vector<std::byte> raw(engine_->FileSize("f").value());
  ASSERT_OK(engine_->Read("f", 0, raw));
  raw[kHeaderBytes + 3] ^= std::byte{0x40};
  ASSERT_OK(engine_->Write("f", raw));

  EngineSource source(engine_, "f");
  TFRecordReader reader(source);
  EXPECT_STATUS_CODE(StatusCode::kDataLoss, reader.ReadRecord());
}

TEST_F(ReaderWriterTest, CorruptionIgnoredWhenVerifyDisabled) {
  WriteFile({Bytes("to-be-corrupted")}, "f");
  std::vector<std::byte> raw(engine_->FileSize("f").value());
  ASSERT_OK(engine_->Read("f", 0, raw));
  raw[kHeaderBytes + 3] ^= std::byte{0x40};
  ASSERT_OK(engine_->Write("f", raw));

  EngineSource source(engine_, "f");
  TFRecordReader reader(source, {.verify_checksums = false});
  EXPECT_OK(reader.ReadRecord());
}

TEST_F(ReaderWriterTest, TruncatedFileIsDataLoss) {
  WriteFile({Bytes("a-full-record-payload")}, "f");
  std::vector<std::byte> raw(engine_->FileSize("f").value());
  ASSERT_OK(engine_->Read("f", 0, raw));
  raw.resize(raw.size() - 6);  // cut into the footer
  ASSERT_OK(engine_->Write("f", raw));

  EngineSource source(engine_, "f");
  TFRecordReader reader(source);
  EXPECT_STATUS_CODE(StatusCode::kDataLoss, reader.ReadRecord());
}

TEST_F(ReaderWriterTest, IndexFindsEveryRecord) {
  Xoshiro256 rng(2);
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 30; ++i) {
    payloads.push_back(RandomPayload(rng, 1 + (rng() % 900)));
  }
  auto source = WriteFile(payloads);
  auto index = BuildIndex(source);
  ASSERT_OK(index);
  ASSERT_EQ(30u, index.value().size());

  std::uint64_t expected_offset = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(expected_offset, index.value()[i].offset);
    EXPECT_EQ(payloads[i].size(), index.value()[i].payload_size);
    expected_offset += index.value()[i].framed_size();
  }
  EXPECT_EQ(source.Size().value(), expected_offset);
}

TEST_F(ReaderWriterTest, IndexRejectsGarbageFile) {
  ASSERT_OK(engine_->Write("junk", Bytes("this is not a tfrecord file!!")));
  EngineSource source(engine_, "junk");
  EXPECT_STATUS_CODE(StatusCode::kDataLoss, BuildIndex(source));
}

TEST_F(ReaderWriterTest, WriterFlushResetsState) {
  TFRecordWriter writer;
  writer.Append(Bytes("one"));
  ASSERT_OK(writer.Flush(*engine_, "f1"));
  EXPECT_EQ(0u, writer.record_count());
  EXPECT_EQ(0u, writer.byte_size());
  writer.Append(Bytes("two"));
  ASSERT_OK(writer.Flush(*engine_, "f2"));

  EngineSource source(engine_, "f2");
  TFRecordReader reader(source);
  EXPECT_EQ("two", Text(reader.ReadRecord().value()));
}

// Property sweep: the round trip must hold across payload sizes that
// straddle the reader's buffer boundaries.
class RecordSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RecordSizeSweep, RoundTripsExactBytes) {
  const std::size_t size = GetParam();
  Xoshiro256 rng(size);
  auto payload = RandomPayload(rng, size);

  auto engine = std::make_shared<storage::MemoryEngine>();
  TFRecordWriter writer;
  writer.Append(payload);
  writer.Append(payload);  // twice, to cross a buffer boundary mid-file
  ASSERT_OK(writer.Flush(*engine, "f"));

  EngineSource source(engine, "f");
  TFRecordReader reader(source, {.buffer_bytes = 4096});
  for (int i = 0; i < 2; ++i) {
    auto record = reader.ReadRecord();
    ASSERT_OK(record);
    EXPECT_EQ(payload, record.value());
  }
  EXPECT_STATUS_CODE(StatusCode::kOutOfRange, reader.ReadRecord());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RecordSizeSweep,
                         ::testing::Values(0, 1, 2, 15, 16, 17, 4079, 4080,
                                           4081, 4096, 5000, 65536, 100000));

}  // namespace
}  // namespace monarch::tfrecord
