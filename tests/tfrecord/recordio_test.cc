#include "tfrecord/recordio.h"

#include <gtest/gtest.h>

#include <memory>

#include "../test_support.h"
#include "core/monarch.h"
#include "core/monarch_source.h"
#include "storage/memory_engine.h"
#include "tfrecord/format.h"
#include "util/rng.h"

namespace monarch::tfrecord {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

class RecordIoTest : public ::testing::Test {
 protected:
  RecordIoTest() : engine_(std::make_shared<storage::MemoryEngine>()) {}

  EngineSource WriteFile(const std::vector<std::vector<std::byte>>& payloads,
                         const std::string& path = "f.rec") {
    RecordIoWriter writer;
    for (const auto& p : payloads) {
      EXPECT_TRUE(writer.Append(p).ok());
    }
    EXPECT_TRUE(writer.Flush(*engine_, path).ok());
    return EngineSource(engine_, path);
  }

  std::shared_ptr<storage::MemoryEngine> engine_;
};

TEST_F(RecordIoTest, FramedSizeIsFourByteAligned) {
  for (std::uint64_t payload : {0ULL, 1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 100ULL}) {
    EXPECT_EQ(0u, RecordIoFramedSize(payload) % 4) << payload;
    EXPECT_GE(RecordIoFramedSize(payload), kRecordIoHeaderBytes + payload);
    EXPECT_LT(RecordIoFramedSize(payload),
              kRecordIoHeaderBytes + payload + 4);
  }
}

TEST_F(RecordIoTest, RoundTripsRecords) {
  auto source = WriteFile({Bytes("alpha"), Bytes("beta-longer"), Bytes("c")});
  RecordIoReader reader(source);
  EXPECT_EQ("alpha", Text(reader.ReadRecord().value()));
  EXPECT_EQ("beta-longer", Text(reader.ReadRecord().value()));
  EXPECT_EQ("c", Text(reader.ReadRecord().value()));
  EXPECT_STATUS_CODE(StatusCode::kOutOfRange, reader.ReadRecord());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(3u, reader.records_read());
}

TEST_F(RecordIoTest, MagicIsOnDiskLittleEndian) {
  WriteFile({Bytes("x")}, "f");
  std::vector<std::byte> raw(4);
  ASSERT_OK(engine_->Read("f", 0, raw));
  EXPECT_EQ(std::byte{0x0A}, raw[0]);
  EXPECT_EQ(std::byte{0x23}, raw[1]);
  EXPECT_EQ(std::byte{0xD7}, raw[2]);
  EXPECT_EQ(std::byte{0xCE}, raw[3]);
}

TEST_F(RecordIoTest, EmptyPayloadAndEmptyFile) {
  auto source = WriteFile({{}});
  RecordIoReader reader(source);
  EXPECT_TRUE(reader.ReadRecord().value().empty());
  EXPECT_STATUS_CODE(StatusCode::kOutOfRange, reader.ReadRecord());

  auto empty = WriteFile({}, "empty");
  RecordIoReader empty_reader(empty);
  EXPECT_STATUS_CODE(StatusCode::kOutOfRange, empty_reader.ReadRecord());
}

TEST_F(RecordIoTest, BadMagicIsDataLoss) {
  WriteFile({Bytes("payload")}, "f");
  std::vector<std::byte> raw(engine_->FileSize("f").value());
  ASSERT_OK(engine_->Read("f", 0, raw));
  raw[0] = std::byte{0xFF};
  ASSERT_OK(engine_->Write("f", raw));
  EngineSource source(engine_, "f");
  RecordIoReader reader(source);
  EXPECT_STATUS_CODE(StatusCode::kDataLoss, reader.ReadRecord());
}

TEST_F(RecordIoTest, TruncatedPayloadIsDataLoss) {
  WriteFile({Bytes("a-longer-payload")}, "f");
  std::vector<std::byte> raw(engine_->FileSize("f").value());
  ASSERT_OK(engine_->Read("f", 0, raw));
  raw.resize(raw.size() - 8);
  ASSERT_OK(engine_->Write("f", raw));
  EngineSource source(engine_, "f");
  RecordIoReader reader(source);
  EXPECT_STATUS_CODE(StatusCode::kDataLoss, reader.ReadRecord());
}

TEST_F(RecordIoTest, OversizedPayloadRejected) {
  RecordIoWriter writer;
  // Don't allocate 512 MiB: the length check happens before copying, so
  // probe it with a fake span over a small buffer. Size is what matters.
  std::vector<std::byte> tiny(1);
  std::span<const std::byte> oversized(tiny.data(),
                                       std::size_t{kRecordIoMaxLength} + 1);
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument, writer.Append(oversized));
}

TEST_F(RecordIoTest, RandomSizedRecordsRoundTrip) {
  Xoshiro256 rng(21);
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 40; ++i) {
    std::vector<std::byte> p(rng.NextBounded(5000));
    for (auto& b : p) b = static_cast<std::byte>(rng() & 0xFF);
    payloads.push_back(std::move(p));
  }
  auto source = WriteFile(payloads);
  RecordIoReader reader(source);
  for (const auto& expected : payloads) {
    auto record = reader.ReadRecord();
    ASSERT_OK(record);
    EXPECT_EQ(expected, record.value());
  }
}

TEST_F(RecordIoTest, StreamsThroughMonarchUnchanged) {
  // The format-agnosticism claim: the SAME middleware serves RecordIO
  // framing with zero format-specific code in MONARCH.
  auto pfs = std::make_shared<storage::MemoryEngine>("pfs");
  auto local = std::make_shared<storage::MemoryEngine>("local");
  {
    RecordIoWriter writer;
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(writer.Append(Bytes("rec-" + std::to_string(i))));
    }
    ASSERT_OK(writer.Flush(*pfs, "data/shard.rec"));
  }
  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{"local", local, 1 << 20});
  config.pfs = core::TierSpec{"pfs", pfs, 0};
  config.dataset_dir = "data";
  auto monarch = core::Monarch::Create(std::move(config));
  ASSERT_OK(monarch);

  for (int epoch = 0; epoch < 2; ++epoch) {
    core::MonarchSource source(**monarch, "data/shard.rec");
    RecordIoReader reader(source);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ("rec-" + std::to_string(i), Text(reader.ReadRecord().value()));
    }
    monarch.value()->DrainPlacements();
  }
  EXPECT_EQ(1u, monarch.value()->Stats().placement.completed);
  EXPECT_TRUE(local->Exists("data/shard.rec").value());
}

}  // namespace
}  // namespace monarch::tfrecord
