#include "tfrecord/format.h"

#include <gtest/gtest.h>

#include <vector>

#include "../test_support.h"

namespace monarch::tfrecord {
namespace {

using monarch::testing::Bytes;

TEST(FormatTest, LittleEndianScalarsRoundTrip) {
  std::byte buf[8];
  StoreLe64(0x0123456789ABCDEFULL, buf);
  EXPECT_EQ(0x0123456789ABCDEFULL, LoadLe64(buf));
  // Byte 0 must be the least-significant byte (true little-endian layout).
  EXPECT_EQ(std::byte{0xEF}, buf[0]);
  EXPECT_EQ(std::byte{0x01}, buf[7]);

  StoreLe32(0xA1B2C3D4u, buf);
  EXPECT_EQ(0xA1B2C3D4u, LoadLe32(buf));
  EXPECT_EQ(std::byte{0xD4}, buf[0]);
}

TEST(FormatTest, FramedSizeAddsHeaderAndFooter) {
  EXPECT_EQ(16u, FramedSize(0));
  EXPECT_EQ(16u + 100, FramedSize(100));
  EXPECT_EQ(kHeaderBytes, 12u);
  EXPECT_EQ(kFooterBytes, 4u);
}

TEST(FormatTest, HeaderEncodeDecodeRoundTrips) {
  std::byte header[kHeaderBytes];
  for (const std::uint64_t size : {0ULL, 1ULL, 255ULL, 65536ULL,
                                   1ULL << 40}) {
    EncodeHeader(size, header);
    auto decoded = DecodeHeader(header);
    ASSERT_OK(decoded);
    EXPECT_EQ(size, decoded.value());
  }
}

TEST(FormatTest, HeaderCrcDetectsCorruption) {
  std::byte header[kHeaderBytes];
  EncodeHeader(1234, header);
  for (std::size_t i = 0; i < kHeaderBytes; ++i) {
    std::byte corrupted[kHeaderBytes];
    std::copy(header, header + kHeaderBytes, corrupted);
    corrupted[i] ^= std::byte{0x01};
    SCOPED_TRACE("flip at byte " + std::to_string(i));
    EXPECT_STATUS_CODE(StatusCode::kDataLoss, DecodeHeader(corrupted));
  }
}

TEST(FormatTest, TruncatedHeaderIsOutOfRange) {
  std::byte header[kHeaderBytes];
  EncodeHeader(7, header);
  EXPECT_STATUS_CODE(StatusCode::kOutOfRange,
                     DecodeHeader({header, kHeaderBytes - 1}));
}

TEST(FormatTest, PayloadCrcVerifies) {
  const auto payload = Bytes("record payload bytes");
  const std::uint32_t crc = PayloadCrc(payload);
  EXPECT_OK(VerifyPayload(payload, crc));

  auto corrupted = payload;
  corrupted[5] ^= std::byte{0x80};
  EXPECT_STATUS_CODE(StatusCode::kDataLoss, VerifyPayload(corrupted, crc));
}

TEST(FormatTest, PayloadCrcIsMasked) {
  // The stored CRC must be the masked transform, never the raw CRC32C —
  // that is what makes our files bit-compatible with TensorFlow's.
  const auto payload = Bytes("x");
  const std::uint32_t raw = Crc32c(payload.data(), payload.size());
  EXPECT_EQ(MaskCrc(raw), PayloadCrc(payload));
  EXPECT_NE(raw, PayloadCrc(payload));
}

}  // namespace
}  // namespace monarch::tfrecord
