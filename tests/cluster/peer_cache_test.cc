// ISSUE 4 integration suite: cooperative peer caching end to end. Every
// test builds a small cluster of real Monarch instances over one shared
// in-memory PFS, wired together by a PeerGroup, and asserts the
// tentpole's contract: each node stages only its shard, demand reads of
// non-owned files are served owner-first over the simulated fabric, and
// every peer failure degrades to the PFS without the caller noticing —
// with the absorbed fault visible in the stats (the discipline of
// tests/core/resilience_test.cc, applied to the peer rung).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "../test_support.h"
#include "cluster/peer_group.h"
#include "core/monarch.h"
#include "storage/faulty_engine.h"
#include "storage/memory_engine.h"

namespace monarch::cluster {
namespace {

using storage::FaultyEngine;
using storage::MemoryEngine;

constexpr std::size_t kFileBytes = 4096;
constexpr int kFiles = 16;

std::string File(int i) { return "data/f" + std::to_string(i) + ".bin"; }

std::vector<std::byte> GoldenPayload(int index) {
  std::vector<std::byte> payload(kFileBytes);
  for (std::size_t b = 0; b < kFileBytes; ++b) {
    payload[b] = static_cast<std::byte>((b * 31 + index * 7) & 0xff);
  }
  return payload;
}

/// One cluster member: a clean-by-default FaultyEngine local tier (tests
/// inject owner-side faults through it) over an inspectable MemoryEngine.
struct Node {
  std::shared_ptr<MemoryEngine> local_inner;
  std::shared_ptr<FaultyEngine> local;
  std::unique_ptr<core::Monarch> monarch;
};

struct PeerWorld {
  std::shared_ptr<MemoryEngine> pfs;
  std::unique_ptr<PeerGroup> group;
  std::vector<Node> nodes;

  explicit PeerWorld(int num_nodes) {
    pfs = std::make_shared<MemoryEngine>("pfs");
    for (int i = 0; i < kFiles; ++i) {
      EXPECT_TRUE(pfs->Write(File(i), GoldenPayload(i)).ok());
    }
    group = std::make_unique<PeerGroup>(num_nodes);
    nodes.resize(static_cast<std::size_t>(num_nodes));
    for (int n = 0; n < num_nodes; ++n) {
      Node& node = nodes[static_cast<std::size_t>(n)];
      node.local_inner =
          std::make_shared<MemoryEngine>("local" + std::to_string(n));
      node.local = std::make_shared<FaultyEngine>(node.local_inner,
                                                  FaultyEngine::FaultSpec{});
      group->RegisterNode(n, node.local);

      core::MonarchConfig config;
      config.cache_tiers.push_back(
          core::TierSpec{"local", node.local, /*quota_bytes=*/1ull << 22});
      config.peer_tier =
          core::TierSpec{"peer", group->MakePeerEngine(n), /*quota_bytes=*/0};
      config.peer_view = group->MakePeerView(n);
      config.pfs = core::TierSpec{"pfs", pfs, 0};
      config.dataset_dir = "data";
      auto monarch = core::Monarch::Create(std::move(config));
      EXPECT_TRUE(monarch.ok()) << monarch.status().ToString();
      if (monarch.ok()) node.monarch = std::move(monarch).value();
    }
  }

  /// One full epoch on `node`: read every file, assert golden bytes.
  void ReadAll(int node) {
    std::vector<std::byte> buf(kFileBytes);
    for (int i = 0; i < kFiles; ++i) {
      auto read = nodes[static_cast<std::size_t>(node)].monarch->Read(
          File(i), 0, buf);
      ASSERT_TRUE(read.ok()) << read.status().ToString();
      ASSERT_EQ(kFileBytes, read.value());
      ASSERT_EQ(GoldenPayload(i), std::vector<std::byte>(buf.begin(),
                                                         buf.end()))
          << "node " << node << " read wrong bytes for " << File(i);
    }
  }

  /// Epoch 1, node by node (deterministic placement interleaving): each
  /// node reads the whole dataset and drains its background staging.
  void WarmUp() {
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      ReadAll(static_cast<int>(n));
      nodes[n].monarch->DrainPlacements();
    }
  }

  [[nodiscard]] std::uint64_t OwnedCount(int node) const {
    std::uint64_t owned = 0;
    for (int i = 0; i < kFiles; ++i) {
      if (group->directory().PrimaryOwner(File(i)) == node) ++owned;
    }
    return owned;
  }

  /// Files whose primary owner is `node`, in index order.
  [[nodiscard]] std::vector<int> OwnedFiles(int node) const {
    std::vector<int> owned;
    for (int i = 0; i < kFiles; ++i) {
      if (group->directory().PrimaryOwner(File(i)) == node) owned.push_back(i);
    }
    return owned;
  }
};

TEST(PeerCacheTest, ShardedStagingServesSteadyStateWithoutPfs) {
  PeerWorld world(2);
  ASSERT_TRUE(world.nodes[0].monarch && world.nodes[1].monarch);
  const std::uint64_t owned0 = world.OwnedCount(0);
  const std::uint64_t owned1 = world.OwnedCount(1);
  ASSERT_EQ(static_cast<std::uint64_t>(kFiles), owned0 + owned1);

  world.WarmUp();

  // Each node staged exactly its shard — never a non-owned file — so the
  // cluster holds the dataset once, not once per node.
  EXPECT_EQ(static_cast<std::uint64_t>(kFiles), world.group->directory().entries());
  EXPECT_EQ(static_cast<std::uint64_t>(kFiles),
            world.group->directory().placed_copies());
  for (int n = 0; n < 2; ++n) {
    const auto stats = world.nodes[static_cast<std::size_t>(n)].monarch->Stats();
    EXPECT_EQ(world.OwnedCount(n), stats.placement.completed);
    EXPECT_EQ(world.OwnedCount(n) * kFileBytes,
              world.nodes[static_cast<std::size_t>(n)].local_inner->TotalBytes());
  }
  // Node 1 warmed up second: node 0's shard was already placed, so those
  // epoch-1 reads crossed the fabric instead of hitting the PFS.
  const int peer = world.nodes[1].monarch->hierarchy().peer_level();
  ASSERT_GE(peer, 0);
  EXPECT_EQ(owned0, world.nodes[1].monarch->Stats().levels[peer].reads);

  // Steady state: a full epoch on every node touches the PFS zero times.
  const auto pfs_before = world.pfs->Stats().Snapshot();
  world.ReadAll(0);
  world.ReadAll(1);
  const auto pfs_delta = world.pfs->Stats().Snapshot() - pfs_before;
  EXPECT_EQ(0u, pfs_delta.read_ops);
  EXPECT_EQ(0u, pfs_delta.bytes_read);

  // The non-owned half of each epoch crossed the fabric; everything
  // reconciles: interconnect transfers == peer-level reads == directory
  // remote hits, and the ladder never fired.
  const auto stats0 = world.nodes[0].monarch->Stats();
  const auto stats1 = world.nodes[1].monarch->Stats();
  EXPECT_EQ(owned1, stats0.levels[peer].reads);
  EXPECT_EQ(2 * owned0, stats1.levels[peer].reads);
  EXPECT_EQ(0u, stats0.degraded_fallbacks);
  EXPECT_EQ(0u, stats1.degraded_fallbacks);
  EXPECT_EQ(owned1 + 2 * owned0, world.group->network()->transfers());
  EXPECT_EQ((owned1 + 2 * owned0) * kFileBytes,
            world.group->network()->bytes_transferred());
  EXPECT_EQ(2 * owned0, world.group->directory().StatsFor(0).remote_hits);
  EXPECT_EQ(owned1, world.group->directory().StatsFor(1).remote_hits);
}

// Satellite (d): the owner node's engine goes UNAVAILABLE mid-read. A
// transient blip is absorbed by the peer driver's retry loop; a hard
// outage exhausts the retries and the PFS rescues the read. Either way
// the caller sees golden bytes and status OK, and injected == absorbed.
TEST(PeerCacheTest, OwnerOutageRetriesThenFallsBackToPfs) {
  PeerWorld world(2);
  ASSERT_TRUE(world.nodes[0].monarch && world.nodes[1].monarch);
  world.WarmUp();

  const std::vector<int> owned0 = world.OwnedFiles(0);
  ASSERT_GE(owned0.size(), 2u);
  const int peer = world.nodes[1].monarch->hierarchy().peer_level();
  ASSERT_GE(peer, 0);
  std::vector<std::byte> buf(kFileBytes);
  auto& reader = *world.nodes[1].monarch;

  // Transient: two injected failures, absorbed entirely by retries.
  world.nodes[0].local->FailNextReads(2);
  ASSERT_OK(reader.Read(File(owned0[0]), 0, buf));
  EXPECT_EQ(GoldenPayload(owned0[0]),
            std::vector<std::byte>(buf.begin(), buf.end()));
  auto stats = reader.Stats();
  EXPECT_EQ(2u, stats.levels[peer].retries);
  EXPECT_EQ(0u, stats.degraded_fallbacks);

  // Hard outage: retries exhaust, the ladder counts a peer_error, and
  // the PFS delivers the authoritative bytes.
  const auto pfs_before = world.pfs->Stats().Snapshot();
  world.nodes[0].local->FailUntilHealed();
  ASSERT_OK(reader.Read(File(owned0[1]), 0, buf));
  EXPECT_EQ(GoldenPayload(owned0[1]),
            std::vector<std::byte>(buf.begin(), buf.end()));
  stats = reader.Stats();
  EXPECT_EQ(1u, stats.fallbacks_peer_error);
  EXPECT_EQ(1u, stats.degraded_fallbacks);
  EXPECT_EQ(1u, (world.pfs->Stats().Snapshot() - pfs_before).read_ops);

  // Reconciliation: every injected fault was either retried in place or
  // surfaced exactly once into the PFS fallback. Nothing reached the app.
  EXPECT_EQ(world.nodes[0].local->injected_failures(),
            stats.levels[peer].retries + stats.fallbacks_peer_error);

  // After the owner heals, peer service resumes transparently.
  world.nodes[0].local->Heal();
  ASSERT_OK(reader.Read(File(owned0[0]), 0, buf));
  EXPECT_EQ(GoldenPayload(owned0[0]),
            std::vector<std::byte>(buf.begin(), buf.end()));
}

// The directory still advertises a holder whose copy vanished (the
// eviction-race window): the peer read comes back kNotFound, the ladder
// counts a peer_miss, and the PFS rescues the read.
TEST(PeerCacheTest, VanishedPeerCopyFallsBackAsMiss) {
  PeerWorld world(2);
  ASSERT_TRUE(world.nodes[0].monarch && world.nodes[1].monarch);
  world.WarmUp();

  const std::vector<int> owned0 = world.OwnedFiles(0);
  ASSERT_GE(owned0.size(), 1u);
  // Rip the staged copy out from under the directory (staged copies keep
  // the dataset-relative name on the tier engine).
  ASSERT_OK(world.nodes[0].local_inner->Delete(File(owned0[0])));

  std::vector<std::byte> buf(kFileBytes);
  ASSERT_OK(world.nodes[1].monarch->Read(File(owned0[0]), 0, buf));
  EXPECT_EQ(GoldenPayload(owned0[0]),
            std::vector<std::byte>(buf.begin(), buf.end()));
  const auto stats = world.nodes[1].monarch->Stats();
  EXPECT_EQ(1u, stats.fallbacks_peer_miss);
  EXPECT_EQ(0u, stats.fallbacks_peer_error);
  EXPECT_EQ(1u, stats.degraded_fallbacks);
}

// Peer sharing is cooperative, not load-bearing: a cluster of one gets a
// working (if pointless) peer tier — every lookup misses, every read
// stays local or PFS, and nothing falls over.
TEST(PeerCacheTest, SingleNodeClusterDegeneratesGracefully) {
  PeerWorld world(1);
  ASSERT_TRUE(world.nodes[0].monarch != nullptr);
  world.WarmUp();
  world.ReadAll(0);

  const auto stats = world.nodes[0].monarch->Stats();
  const int peer = world.nodes[0].monarch->hierarchy().peer_level();
  ASSERT_GE(peer, 0);
  EXPECT_EQ(0u, stats.levels[peer].reads);
  EXPECT_EQ(static_cast<std::uint64_t>(kFiles), stats.placement.completed);
  EXPECT_EQ(0u, stats.degraded_fallbacks);
  EXPECT_EQ(0u, world.group->network()->transfers());
}

}  // namespace
}  // namespace monarch::cluster
