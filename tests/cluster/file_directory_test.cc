#include "cluster/file_directory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace monarch::cluster {
namespace {

std::string File(int i) { return "data/f" + std::to_string(i) + ".bin"; }

TEST(FileDirectoryTest, OwnershipIsDeterministicAndInRange) {
  FileDirectory a(4);
  FileDirectory b(4);
  for (int i = 0; i < 64; ++i) {
    const int owner = a.PrimaryOwner(File(i));
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 4);
    // Same ring parameters -> same owner, across instances (and runs:
    // the ring hash is FNV-1a, not std::hash).
    EXPECT_EQ(owner, b.PrimaryOwner(File(i)));
    EXPECT_TRUE(a.IsOwner(File(i), owner));
  }
}

TEST(FileDirectoryTest, OwnershipCoversAllNodes) {
  // With 64 virtual nodes per member, a few hundred files should land on
  // every member of a small cluster.
  FileDirectory directory(4);
  std::set<int> seen;
  for (int i = 0; i < 256; ++i) seen.insert(directory.PrimaryOwner(File(i)));
  EXPECT_EQ(4u, seen.size());
}

TEST(FileDirectoryTest, ReplicationYieldsDistinctOwnersPrimaryFirst) {
  FileDirectory directory(5, /*replication=*/3);
  EXPECT_EQ(3, directory.replication());
  for (int i = 0; i < 32; ++i) {
    const auto owners = directory.OwnerNodes(File(i));
    ASSERT_EQ(3u, owners.size());
    EXPECT_EQ(directory.PrimaryOwner(File(i)), owners.front());
    std::set<int> distinct(owners.begin(), owners.end());
    EXPECT_EQ(3u, distinct.size());
    for (const int node : owners) EXPECT_TRUE(directory.IsOwner(File(i), node));
  }
}

TEST(FileDirectoryTest, ReplicationClampedToClusterSize) {
  FileDirectory directory(2, /*replication=*/8);
  EXPECT_EQ(2, directory.replication());
  EXPECT_EQ(2u, directory.OwnerNodes(File(0)).size());
}

TEST(FileDirectoryTest, PlacedHolderExcludesAskerAndTracksEviction) {
  FileDirectory directory(3);
  EXPECT_FALSE(directory.PlacedHolder(File(0), 0).has_value());

  directory.MarkPlaced(File(0), /*node=*/1, /*level=*/0);
  EXPECT_EQ(1, directory.PlacedHolder(File(0), 0).value());
  EXPECT_EQ(1, directory.PlacedHolder(File(0), 2).value());
  // The holder itself gets no peer: its copy is local.
  EXPECT_FALSE(directory.PlacedHolder(File(0), 1).has_value());

  directory.MarkEvicted(File(0), 1);
  EXPECT_FALSE(directory.PlacedHolder(File(0), 0).has_value());
  // Entries survive eviction with an empty holder list.
  EXPECT_EQ(1u, directory.entries());
  EXPECT_EQ(0u, directory.placed_copies());
}

TEST(FileDirectoryTest, DuplicatePlacementsAndUnknownEvictionsAreBenign) {
  FileDirectory directory(2);
  directory.MarkPlaced(File(0), 0, 0);
  directory.MarkPlaced(File(0), 0, 0);  // re-stage after quarantine
  EXPECT_EQ(1u, directory.placed_copies());
  directory.MarkEvicted(File(1), 0);  // never placed
  directory.MarkEvicted(File(0), 1);  // placed by someone else
  EXPECT_EQ(1u, directory.placed_copies());
  EXPECT_EQ(0, directory.PlacedHolder(File(0), 1).value());
}

TEST(FileDirectoryTest, StatsForCountsOwnedPlacedAndRemoteHits) {
  FileDirectory directory(2);
  std::vector<std::uint64_t> owned(2, 0);
  for (int i = 0; i < 16; ++i) {
    const int owner = directory.PrimaryOwner(File(i));
    ++owned[static_cast<std::size_t>(owner)];
    directory.MarkPlaced(File(i), owner, 0);
  }
  directory.CountRemoteHit(0);
  directory.CountRemoteHit(0);
  directory.CountRemoteHit(1);

  for (int node = 0; node < 2; ++node) {
    const DirectoryNodeStats stats = directory.StatsFor(node);
    EXPECT_EQ(node, stats.node);
    EXPECT_EQ(owned[static_cast<std::size_t>(node)], stats.owned);
    EXPECT_EQ(owned[static_cast<std::size_t>(node)], stats.placed);
  }
  EXPECT_EQ(2u, directory.StatsFor(0).remote_hits);
  EXPECT_EQ(1u, directory.StatsFor(1).remote_hits);
  EXPECT_EQ(16u, directory.entries());
  EXPECT_EQ(16u, directory.placed_copies());
}

// Satellite (f): the dedicated TSan stress — N threads hammering the
// directory with the register/lookup/evict mix every node's reader and
// placement threads produce concurrently. Run under check.sh's TSan leg
// (filter `FileDirectory*`); assertions here only pin the invariants that
// survive any interleaving.
TEST(FileDirectoryStressTest, ConcurrentRegisterLookupEvict) {
  constexpr int kNodes = 4;
  constexpr int kFiles = 64;
  constexpr int kRounds = 200;
  FileDirectory directory(kNodes, /*replication=*/2, /*shards=*/8);

  // Seed the map so the very first reader pass already resolves holders —
  // the threads below then race placement churn against lookups.
  for (int i = 0; i < kFiles; ++i) {
    directory.MarkPlaced(File(i), directory.PrimaryOwner(File(i)), 0);
  }

  std::vector<std::thread> threads;
  threads.reserve(kNodes * 2);
  for (int node = 0; node < kNodes; ++node) {
    // Placement thread: place and evict this node's shard, repeatedly —
    // the evict-race side of the stress.
    threads.emplace_back([&directory, node] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kFiles; ++i) {
          if (!directory.IsOwner(File(i), node)) continue;
          directory.MarkPlaced(File(i), node, 0);
          if (round % 3 == 2) directory.MarkEvicted(File(i), node);
        }
      }
    });
    // Reader thread: resolve holders and poll stats while placement churns.
    threads.emplace_back([&directory, node] {
      std::uint64_t hits = 0;
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kFiles; ++i) {
          const auto holder = directory.PlacedHolder(File(i), node);
          if (holder.has_value()) {
            ASSERT_NE(node, holder.value());
            directory.CountRemoteHit(holder.value());
            ++hits;
          }
        }
        (void)directory.StatsFor(node);
        (void)directory.placed_copies();
      }
      EXPECT_GT(hits, 0u);
    });
  }
  for (auto& thread : threads) thread.join();

  // Quiesced invariants: every file was placed at least once (entries
  // stick), and remote-hit tallies equal what the readers recorded.
  EXPECT_EQ(static_cast<std::uint64_t>(kFiles), directory.entries());
  std::uint64_t placed = 0;
  std::uint64_t hits = 0;
  for (int node = 0; node < kNodes; ++node) {
    placed += directory.StatsFor(node).placed;
    hits += directory.StatsFor(node).remote_hits;
  }
  EXPECT_EQ(placed, directory.placed_copies());
  EXPECT_GT(hits, 0u);
}

}  // namespace
}  // namespace monarch::cluster
