// ISSUE 7 churn suite: versioned membership, replica failover, and
// replication repair. Three layers, mirroring the tentpole:
//
//   * MembershipTest — the FileDirectory's transition algebra: a down/
//     join moves only ~1/N of the namespace (consistent hashing), the
//     repair work it queues is exactly the ownership it moved, and a
//     downed node's advertisements vanish from every reader atomically.
//   * MembershipStressTest — MarkEvicted/MarkPlaced racing NodeDown/
//     NodeUp retraction scans. Run under check.sh's TSan leg (filter
//     `Membership*`); assertions pin only interleaving-proof invariants.
//   * RestageTest / ChurnIntegrationTest — the repair pump drains the
//     queues it is fed, and a real 3-node Monarch cluster survives
//     kill -> repair -> rejoin with golden bytes end to end and the
//     replication factor restored.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "../test_support.h"
#include "cluster/file_directory.h"
#include "cluster/peer_group.h"
#include "cluster/restage_pump.h"
#include "core/monarch.h"
#include "storage/memory_engine.h"
#include "util/clock.h"

namespace monarch::cluster {
namespace {

using storage::MemoryEngine;

std::string File(int i) { return "data/f" + std::to_string(i) + ".bin"; }

/// Owner sets of every file under the directory's current membership.
std::vector<std::vector<int>> OwnerMap(const FileDirectory& directory,
                                       int files) {
  std::vector<std::vector<int>> owners;
  owners.reserve(static_cast<std::size_t>(files));
  for (int i = 0; i < files; ++i) owners.push_back(directory.OwnerNodes(File(i)));
  return owners;
}

TEST(MembershipTest, NodeDownMovesOnlyTheVictimsShard) {
  constexpr int kNodes = 8;
  constexpr int kFiles = 256;
  FileDirectory directory(kNodes);
  for (int i = 0; i < kFiles; ++i) {
    directory.MarkPlaced(File(i), directory.PrimaryOwner(File(i)), 0);
  }
  const auto before = OwnerMap(directory, kFiles);
  std::uint64_t victim_owned = 0;
  for (int i = 0; i < kFiles; ++i) {
    if (before[static_cast<std::size_t>(i)].front() == 3) ++victim_owned;
  }
  ASSERT_GT(victim_owned, 0u);

  const MembershipDelta delta = directory.NodeDown(3);
  ASSERT_TRUE(delta.applied);
  EXPECT_EQ(2u, delta.version);
  EXPECT_EQ(delta.version, directory.membership_version());
  EXPECT_EQ(kNodes - 1, directory.live_nodes());
  EXPECT_EQ(NodeState::kDown, directory.StateOf(3));

  // Exactly the victim's shard changed hands; every other file kept its
  // owner (the consistent-hashing contract — no full reshuffle).
  EXPECT_EQ(victim_owned, delta.files_reowned);
  EXPECT_EQ(victim_owned, delta.restage_enqueued);
  const auto after = OwnerMap(directory, kFiles);
  for (int i = 0; i < kFiles; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (before[idx].front() != 3) {
      EXPECT_EQ(before[idx], after[idx]) << File(i) << " re-owned needlessly";
    } else {
      EXPECT_NE(3, after[idx].front());
    }
  }

  // The node that inherited each orphaned file got its repair task.
  std::uint64_t queued = 0;
  for (int n = 0; n < kNodes; ++n) queued += directory.RestageQueueDepth(n);
  EXPECT_EQ(delta.restage_enqueued, queued);
  EXPECT_EQ(delta.restage_enqueued, directory.RestageQueueDepth());
}

TEST(MembershipTest, NodeJoinHandsTheJoinerItsShard) {
  constexpr int kFiles = 128;
  FileDirectory directory(4, /*replication=*/1, /*shards=*/16,
                          /*deferred_nodes=*/{3});
  EXPECT_EQ(NodeState::kAbsent, directory.StateOf(3));
  EXPECT_EQ(3, directory.live_nodes());
  for (int i = 0; i < kFiles; ++i) {
    const int owner = directory.PrimaryOwner(File(i));
    EXPECT_NE(3, owner) << "absent node owns " << File(i);
    directory.MarkPlaced(File(i), owner, 0);
  }

  const MembershipDelta delta = directory.NodeJoin(3);
  ASSERT_TRUE(delta.applied);
  EXPECT_EQ(4, directory.live_nodes());
  EXPECT_EQ(NodeState::kUp, directory.StateOf(3));

  // ~1/N of the namespace moved to the joiner, and every moved file is
  // queued on the joiner's (and only the joiner's) repair queue.
  std::uint64_t joiner_owned = 0;
  for (int i = 0; i < kFiles; ++i) {
    if (directory.PrimaryOwner(File(i)) == 3) ++joiner_owned;
  }
  EXPECT_GT(joiner_owned, 0u);
  EXPECT_LT(joiner_owned, static_cast<std::uint64_t>(kFiles) / 2);
  EXPECT_EQ(delta.files_reowned, joiner_owned);
  EXPECT_EQ(delta.restage_enqueued, directory.RestageQueueDepth(3));
  for (int n = 0; n < 3; ++n) EXPECT_EQ(0u, directory.RestageQueueDepth(n));

  const auto handoff = directory.TakeRestage(3, kFiles);
  EXPECT_EQ(delta.restage_enqueued, handoff.size());
  for (const std::string& name : handoff) {
    EXPECT_TRUE(directory.IsOwner(name, 3)) << name;
  }
}

TEST(MembershipTest, DownNodeAdvertisementsVanishAtomically) {
  FileDirectory directory(3, /*replication=*/2);
  directory.MarkPlaced(File(0), 0, 0);
  directory.MarkPlaced(File(0), 1, 0);
  ASSERT_EQ(2u, directory.PlacedHolders(File(0), 2).size());

  ASSERT_TRUE(directory.NodeDown(1).applied);
  // Readers never see the ghost: holder resolution skips the down node
  // the instant the snapshot swaps, regardless of the map scan.
  const auto holders = directory.PlacedHolders(File(0), 2);
  ASSERT_EQ(1u, holders.size());
  EXPECT_EQ(0, holders.front());

  // A revived node re-advertises itself (Monarch::ReadvertisePlacedCopies)
  // — the directory does not resurrect retracted ads on NodeUp.
  ASSERT_TRUE(directory.NodeUp(1).applied);
  EXPECT_EQ(1u, directory.PlacedHolders(File(0), 2).size());
  directory.MarkPlaced(File(0), 1, 0);
  EXPECT_EQ(2u, directory.PlacedHolders(File(0), 2).size());
}

TEST(MembershipTest, InvalidTransitionsAreRejectedNoOps) {
  FileDirectory directory(3, /*replication=*/1, /*shards=*/16,
                          /*deferred_nodes=*/{2});
  const std::uint64_t v0 = directory.membership_version();
  EXPECT_FALSE(directory.NodeUp(0).applied);    // already up
  EXPECT_FALSE(directory.NodeJoin(0).applied);  // not deferred
  EXPECT_FALSE(directory.NodeUp(2).applied);    // absent joins, not ups
  EXPECT_FALSE(directory.NodeDown(-1).applied);
  EXPECT_FALSE(directory.NodeDown(99).applied);
  ASSERT_TRUE(directory.NodeDown(1).applied);
  EXPECT_FALSE(directory.NodeDown(1).applied);  // already down
  EXPECT_EQ(v0 + 1, directory.membership_version());
}

// TSan stress: placement threads publish/evict while a churn thread
// flips the same node down and up. The retraction scan races MarkEvicted
// on the same rows and holder lookups race the snapshot swap — any
// outcome is fine, but no lookup may ever return a node while it is
// down, and the quiesced count must reconcile.
TEST(MembershipStressTest, MarkEvictedRacesRetractionScan) {
  constexpr int kNodes = 4;
  constexpr int kFiles = 48;
  constexpr int kRounds = 120;
  FileDirectory directory(kNodes, /*replication=*/2, /*shards=*/8);
  for (int i = 0; i < kFiles; ++i) {
    for (const int owner : directory.OwnerNodes(File(i))) {
      directory.MarkPlaced(File(i), owner, 0);
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Churn thread: node 1 bounces for the whole run.
  threads.emplace_back([&directory, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)directory.NodeDown(1);
      (void)directory.NodeUp(1);
    }
  });
  // Placement threads: every node churns its shard's ads, including the
  // bouncing node re-advertising mid-retraction.
  for (int node = 0; node < kNodes; ++node) {
    threads.emplace_back([&directory, node] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kFiles; ++i) {
          directory.MarkPlaced(File(i), node, 0);
          if ((round + i) % 2 == 0) directory.MarkEvicted(File(i), node);
        }
      }
    });
  }
  // Reader thread: resolved holders must be live at resolution time.
  threads.emplace_back([&directory, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      for (int i = 0; i < kFiles; ++i) {
        for (const int holder : directory.PlacedHolders(File(i), 0)) {
          EXPECT_NE(0, holder);
          EXPECT_GE(holder, 0);
          EXPECT_LT(holder, directory.num_nodes());
        }
        (void)directory.CheckReplication();
      }
    }
  });

  for (std::size_t t = 1; t <= kNodes; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads.front().join();
  threads.back().join();

  // Quiesce with node 1 up; re-place everything and the books balance.
  if (!directory.IsLive(1)) (void)directory.NodeUp(1);
  std::uint64_t placed = 0;
  for (int i = 0; i < kFiles; ++i) {
    for (int n = 0; n < kNodes; ++n) directory.MarkPlaced(File(i), n, 0);
  }
  for (int n = 0; n < kNodes; ++n) placed += directory.StatsFor(n).placed;
  EXPECT_EQ(static_cast<std::uint64_t>(kFiles) * kNodes, placed);
  EXPECT_EQ(placed, directory.placed_copies());
  EXPECT_EQ(static_cast<std::uint64_t>(kFiles), directory.entries());
}

TEST(RestageTest, PumpDrainsQueueAndMetersCompletions) {
  constexpr int kNodes = 3;
  constexpr int kFiles = 96;
  FileDirectory directory(kNodes);
  for (int i = 0; i < kFiles; ++i) {
    directory.MarkPlaced(File(i), directory.PrimaryOwner(File(i)), 0);
  }
  const MembershipDelta delta = directory.NodeDown(2);
  ASSERT_TRUE(delta.applied);
  ASSERT_GT(delta.restage_enqueued, 0u);

  // One pump per survivor; the StageFn records what it was handed and
  // reports a fixed 4 KiB copy.
  std::mutex mu;
  std::vector<std::string> staged;
  auto stage = [&mu, &staged](const std::string& name) -> Result<std::uint64_t> {
    std::lock_guard<std::mutex> lock(mu);
    staged.push_back(name);
    return 4096;
  };
  {
    RestagePump::Options options;
    options.poll = Millis(1);
    RestagePump pump0(directory, 0, stage, options);
    RestagePump pump1(directory, 1, stage, options);
    const TimePoint deadline = SteadyClock::now() + std::chrono::seconds(5);
    while (directory.RestageQueueDepth() > 0 && SteadyClock::now() < deadline) {
      PreciseSleep(Millis(1));
    }
    pump0.Stop();
    pump1.Stop();
    EXPECT_EQ(delta.restage_enqueued,
              pump0.stats().staged_files + pump1.stats().staged_files);
    EXPECT_EQ(delta.restage_enqueued * 4096,
              pump0.stats().staged_bytes + pump1.stats().staged_bytes);
  }
  EXPECT_EQ(0u, directory.RestageQueueDepth());
  EXPECT_EQ(delta.restage_enqueued, directory.restage_completed_total());
  // Every repaired file was handed to the node that now owns it.
  std::set<std::string> distinct(staged.begin(), staged.end());
  EXPECT_EQ(delta.restage_enqueued, distinct.size());
  for (const std::string& name : distinct) EXPECT_NE(2, directory.PrimaryOwner(name));
}

TEST(RestageTest, StaleTasksAreSkippedNotCounted) {
  FileDirectory directory(2);
  for (int i = 0; i < 8; ++i) {
    directory.MarkPlaced(File(i), directory.PrimaryOwner(File(i)), 0);
  }
  const MembershipDelta delta = directory.NodeDown(1);
  ASSERT_TRUE(delta.applied);
  ASSERT_GT(delta.restage_enqueued, 0u);

  // A StageFn that declines everything (file already placed / ownership
  // moved on): the pump must drain the queue without booking repairs.
  RestagePump::Options options;
  options.poll = Millis(1);
  RestagePump pump(directory, 0,
                   [](const std::string&) -> Result<std::uint64_t> { return 0; },
                   options);
  const TimePoint deadline = SteadyClock::now() + std::chrono::seconds(5);
  while (directory.RestageQueueDepth() > 0 && SteadyClock::now() < deadline) {
    PreciseSleep(Millis(1));
  }
  pump.Stop();
  EXPECT_EQ(0u, directory.RestageQueueDepth());
  EXPECT_EQ(0u, pump.stats().staged_files);
  EXPECT_EQ(delta.restage_enqueued, pump.stats().skipped);
  EXPECT_EQ(0u, directory.restage_completed_total());
}

// ---------------------------------------------------------------------------
// Integration: a real 3-node Monarch cluster (replication 2) survives
// kill -> repair -> rejoin. Golden bytes at every step, replication
// restored at the end, and the failure accounting reconciles.

constexpr std::size_t kIntFileBytes = 4096;
constexpr int kIntFiles = 24;

std::vector<std::byte> GoldenPayload(int index) {
  std::vector<std::byte> payload(kIntFileBytes);
  for (std::size_t b = 0; b < kIntFileBytes; ++b) {
    payload[b] = static_cast<std::byte>((b * 31 + index * 7) & 0xff);
  }
  return payload;
}

struct ChurnWorld {
  std::shared_ptr<MemoryEngine> pfs;
  std::unique_ptr<PeerGroup> group;
  std::vector<std::shared_ptr<MemoryEngine>> locals;
  std::vector<std::unique_ptr<core::Monarch>> nodes;

  explicit ChurnWorld(int num_nodes, int replication) {
    pfs = std::make_shared<MemoryEngine>("pfs");
    for (int i = 0; i < kIntFiles; ++i) {
      EXPECT_TRUE(pfs->Write(File(i), GoldenPayload(i)).ok());
    }
    PeerOptions options;
    options.replication = replication;
    group = std::make_unique<PeerGroup>(num_nodes, options);
    for (int n = 0; n < num_nodes; ++n) {
      locals.push_back(
          std::make_shared<MemoryEngine>("local" + std::to_string(n)));
      group->RegisterNode(n, locals.back());
      core::MonarchConfig config;
      config.cache_tiers.push_back(
          core::TierSpec{"local", locals.back(), /*quota_bytes=*/1ull << 22});
      config.peer_tier =
          core::TierSpec{"peer", group->MakePeerEngine(n), /*quota_bytes=*/0};
      config.peer_view = group->MakePeerView(n);
      config.pfs = core::TierSpec{"pfs", pfs, 0};
      config.dataset_dir = "data";
      auto monarch = core::Monarch::Create(std::move(config));
      EXPECT_TRUE(monarch.ok()) << monarch.status().ToString();
      nodes.push_back(std::move(monarch).value());
    }
  }

  void ReadAll(int node) {
    std::vector<std::byte> buf(kIntFileBytes);
    for (int i = 0; i < kIntFiles; ++i) {
      auto read = nodes[static_cast<std::size_t>(node)]->Read(File(i), 0, buf);
      ASSERT_TRUE(read.ok()) << read.status().ToString();
      ASSERT_EQ(kIntFileBytes, read.value());
      ASSERT_EQ(GoldenPayload(i),
                std::vector<std::byte>(buf.begin(), buf.end()))
          << "node " << node << " read wrong bytes for " << File(i);
    }
  }

  void WarmUp() {
    // Two passes: the first stages each primary's shard, the second lets
    // the secondary owners stage their replicas off peer-served reads.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t n = 0; n < nodes.size(); ++n) {
        ReadAll(static_cast<int>(n));
        nodes[n]->DrainPlacements();
      }
    }
  }

  /// Drain every live node's repair queue synchronously (no pump timing
  /// in the assertions path).
  void Repair() {
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      if (!group->directory().IsLive(static_cast<int>(n))) continue;
      for (const std::string& name : group->directory().TakeRestage(
               static_cast<int>(n), kIntFiles)) {
        auto scheduled = nodes[n]->RestageFile(name);
        ASSERT_TRUE(scheduled.ok()) << scheduled.status().ToString();
        if (scheduled.value() > 0) {
          group->directory().CountRestageCompleted(scheduled.value());
        }
      }
      nodes[n]->DrainPlacements();
    }
  }
};

TEST(ChurnIntegrationTest, KillRepairRejoinRestoresReplication) {
  ChurnWorld world(3, /*replication=*/2);
  ASSERT_EQ(3u, world.nodes.size());
  world.WarmUp();

  // Replicated steady state: every file has 2 live copies.
  ReplicationHealth health = world.group->directory().CheckReplication();
  EXPECT_EQ(static_cast<std::uint64_t>(kIntFiles), health.files);
  EXPECT_EQ(0u, health.below_target);
  EXPECT_EQ(0u, health.unhosted);

  // Kill node 2. Ads retract, ownership shifts, repair work queues.
  const MembershipDelta down = world.group->KillNode(2);
  ASSERT_TRUE(down.applied);
  EXPECT_EQ(2, world.group->directory().live_nodes());
  health = world.group->directory().CheckReplication();
  EXPECT_GT(health.below_target, 0u);
  EXPECT_EQ(0u, health.unhosted) << "replication 2 must survive one loss";

  // Repair: survivors re-stage what the victim owned until the books
  // say the (2-node) cluster is back at target. (Run before the next
  // epoch — demand staging would otherwise self-heal the replicas off
  // peer-served reads and leave the repair queue all stale tasks.)
  ASSERT_GT(world.group->directory().restage_enqueued_total(), 0u);
  world.Repair();
  EXPECT_EQ(0u, world.group->directory().RestageQueueDepth());
  health = world.group->directory().CheckReplication();
  EXPECT_EQ(0u, health.below_target);
  // Accounting: some queued tasks were stale (the survivor already held
  // a copy), the rest booked real repair copies — never more than queued.
  EXPECT_GT(world.group->directory().restage_completed_total(), 0u);
  EXPECT_LE(world.group->directory().restage_completed_total(),
            world.group->directory().restage_enqueued_total());

  // Mid-outage epoch on the survivors: golden bytes, zero app errors —
  // the repaired replicas serve everything, the PFS stays untouched.
  const auto pfs_before = world.pfs->Stats().Snapshot();
  world.ReadAll(0);
  world.ReadAll(1);
  EXPECT_EQ(0u, (world.pfs->Stats().Snapshot() - pfs_before).read_ops);

  // Rejoin: the victim re-advertises its surviving copies FIRST, so the
  // rejoin delta skips repairing what it still holds.
  const std::uint64_t readvertised = world.nodes[2]->ReadvertisePlacedCopies();
  EXPECT_GT(readvertised, 0u);
  const MembershipDelta up = world.group->ReviveNode(2);
  ASSERT_TRUE(up.applied);
  EXPECT_EQ(3, world.group->directory().live_nodes());
  world.Repair();

  // Full strength: 3 live nodes, replication 2, nothing below target,
  // and the rejoined node serves golden bytes again.
  health = world.group->directory().CheckReplication();
  EXPECT_EQ(0u, health.below_target);
  EXPECT_EQ(0u, health.unhosted);
  world.ReadAll(2);
  // Atomic retraction means no survivor ever dialed the ghost: the whole
  // kill/repair/rejoin cycle ran without a single degradation fallback.
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(0u, world.nodes[static_cast<std::size_t>(n)]
                      ->Stats()
                      .degraded_fallbacks)
        << "node " << n;
  }
}

// Replica failover end to end through Monarch: with replication 2 the
// reader rescues a non-owned read from the second holder when the first
// dies between resolution windows, without surfacing anything.
TEST(ChurnIntegrationTest, ReplicaFailoverCoversDeadHolder) {
  ChurnWorld world(3, /*replication=*/2);
  world.WarmUp();

  // Fail node 1 on the FABRIC ONLY — the directory still advertises it
  // (the detection-lag window the failover rung exists for).
  world.group->network()->SetNodeDown(1, true);
  const std::uint64_t timeouts_before = world.group->network()->rpc_timeouts();

  std::vector<std::byte> buf(kIntFileBytes);
  std::uint64_t cross_reads = 0;
  for (int i = 0; i < kIntFiles; ++i) {
    // Reads from node 0 of files node 0 does not hold locally must be
    // rescued by the other live holder or the PFS — never an error.
    if (world.group->directory().IsOwner(File(i), 0)) continue;
    ++cross_reads;
    auto read = world.nodes[0]->Read(File(i), 0, buf);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ASSERT_EQ(GoldenPayload(i), std::vector<std::byte>(buf.begin(), buf.end()));
  }
  ASSERT_GT(cross_reads, 0u);
  // At least one read dialed the dead holder first and paid the modelled
  // timeout before failing over (quarantine then shields the rest).
  EXPECT_GT(world.group->network()->rpc_timeouts(), timeouts_before);
  // Every rescue stayed inside the peer tier — the second live holder
  // covered the dead one, so the degradation ladder never fired.
  EXPECT_EQ(0u, world.nodes[0]->Stats().degraded_fallbacks);

  world.group->network()->SetNodeDown(1, false);
}

}  // namespace
}  // namespace monarch::cluster
