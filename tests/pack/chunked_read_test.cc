// End-to-end chunk-granularity staging (ISSUE 9): partial reads must be
// byte-identical to whole-file reads with the codec on and off, across
// eviction races and the degradation ladder, and sparse access must
// stage (and bill) only the chunks actually touched.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "../test_support.h"
#include "core/monarch.h"
#include "core/placement_policy.h"
#include "pack/chunk_map.h"
#include "storage/memory_engine.h"
#include "util/rng.h"
#include "workload/small_file_dataset.h"

namespace monarch::core {
namespace {

class ChunkedReadTest : public ::testing::Test {
 protected:
  static workload::SmallFileSpec Spec() {
    workload::SmallFileSpec spec;
    spec.directory = "data";
    spec.num_files = 12;
    spec.num_classes = 3;
    spec.mean_file_bytes = 4 * 1024;
    spec.file_size_jitter = 0.4;
    spec.seed = 21;
    spec.pack_extent_bytes = 16 * 1024;
    return spec;
  }

  /// Packed dataset + pack-enabled Monarch over a memory PFS and one
  /// memory cache tier.
  Result<std::unique_ptr<Monarch>> Build(const std::string& codec,
                                         std::uint64_t quota = 1'000'000,
                                         const std::string& policy = "") {
    spec_ = Spec();
    pfs_ = std::make_shared<storage::MemoryEngine>("pfs");
    local_ = std::make_shared<storage::MemoryEngine>("local");
    auto manifest = workload::GeneratePackedSmallFiles(*pfs_, spec_);
    if (!manifest.ok()) return manifest.status();
    total_bytes_ = manifest.value().total_bytes;

    MonarchConfig config;
    config.cache_tiers.push_back(TierSpec{"local", local_, quota});
    config.pfs = TierSpec{"pfs", pfs_, 0};
    config.dataset_dir = "data";
    config.placement.num_threads = 2;
    config.placement.pack.enabled = true;
    config.placement.pack.chunk_bytes = 1024;
    config.placement.pack.codec = codec;
    if (!policy.empty()) {
      auto made = MakePlacementPolicyByName(policy);
      if (!made.ok()) return made.status();
      config.policy = std::move(made).value();
    }
    return Monarch::Create(std::move(config));
  }

  std::vector<std::byte> Expected(std::uint64_t index) const {
    return workload::SmallFilePayload(spec_, index);
  }

  void ExpectSliceMatches(Monarch& monarch, std::uint64_t index,
                          std::uint64_t offset, std::size_t length) {
    const std::vector<std::byte> whole = Expected(index);
    std::vector<std::byte> buf(length);
    auto read = monarch.Read(workload::SmallFilePath(spec_, index), offset,
                             buf);
    ASSERT_OK(read);
    const std::size_t expect_n = static_cast<std::size_t>(
        offset >= whole.size()
            ? 0
            : std::min<std::uint64_t>(length, whole.size() - offset));
    ASSERT_EQ(expect_n, read.value())
        << "file " << index << " offset " << offset;
    EXPECT_TRUE(std::equal(
        buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(expect_n),
        whole.begin() + static_cast<std::ptrdiff_t>(offset)))
        << "file " << index << " offset " << offset << " len " << length;
  }

  workload::SmallFileSpec spec_;
  std::shared_ptr<storage::MemoryEngine> pfs_;
  std::shared_ptr<storage::MemoryEngine> local_;
  std::uint64_t total_bytes_ = 0;
};

TEST_F(ChunkedReadTest, PartialReadsMatchWholeFileColdAndWarm) {
  for (const std::string codec : {"none", "lz"}) {
    auto monarch = Build(codec);
    ASSERT_OK(monarch);
    // Cold pass: everything comes from the packed PFS extents.
    for (std::uint64_t f = 0; f < spec_.num_files; ++f) {
      ExpectSliceMatches(**monarch, f, 0, 512);
      ExpectSliceMatches(**monarch, f, 700, 900);
      ExpectSliceMatches(**monarch, f, 3000, 8 * 1024);
    }
    monarch.value()->DrainPlacements();
    // Warm pass: the same slices now come from resident chunks.
    const auto hits_before = monarch.value()->Stats().chunk_hits;
    for (std::uint64_t f = 0; f < spec_.num_files; ++f) {
      ExpectSliceMatches(**monarch, f, 0, 512);
      ExpectSliceMatches(**monarch, f, 700, 900);
      ExpectSliceMatches(**monarch, f, 1, 1024);  // straddles chunks 0/1
    }
    EXPECT_GT(monarch.value()->Stats().chunk_hits, hits_before)
        << "codec " << codec
        << ": warm reads must be served from resident chunks";
  }
}

TEST_F(ChunkedReadTest, SparseReadsStageOnlyTouchedChunks) {
  auto monarch = Build("none");
  ASSERT_OK(monarch);
  // Touch only the first 100 bytes of every file: exactly chunk 0 of
  // each file should become resident.
  for (std::uint64_t f = 0; f < spec_.num_files; ++f) {
    ExpectSliceMatches(**monarch, f, 0, 100);
  }
  monarch.value()->DrainPlacements();
  EXPECT_EQ(spec_.num_files * 1024, local_->TotalBytes())
      << "only the touched 1 KiB chunk of each file may be staged";
  EXPECT_LT(local_->TotalBytes(), total_bytes_ / 2)
      << "sparse staging must not fetch whole files";
  const MonarchStats stats = monarch.value()->Stats();
  EXPECT_EQ(spec_.num_files, stats.placement.chunks_staged);
  EXPECT_GT(stats.pack_extents, 0u);
  EXPECT_EQ(spec_.num_files, stats.pack_logical_files);
}

TEST_F(ChunkedReadTest, CompressedChunksShrinkTierFootprint) {
  auto monarch = Build("lz");
  ASSERT_OK(monarch);
  std::vector<std::byte> buf(16 * 1024);
  std::uint64_t logical = 0;
  for (std::uint64_t f = 0; f < spec_.num_files; ++f) {
    auto read =
        monarch.value()->Read(workload::SmallFilePath(spec_, f), 0, buf);
    ASSERT_OK(read);
    logical += read.value();
  }
  monarch.value()->DrainPlacements();
  EXPECT_GT(local_->TotalBytes(), 0u);
  EXPECT_LT(local_->TotalBytes(), logical * 3 / 4)
      << "run-heavy payloads must compress on stage-in";
  // And the compressed copies decode back byte-identically.
  for (std::uint64_t f = 0; f < spec_.num_files; ++f) {
    ExpectSliceMatches(**monarch, f, 0, 16 * 1024);
    ExpectSliceMatches(**monarch, f, 1500, 300);
  }
}

TEST_F(ChunkedReadTest, CorruptStagedChunkDegradesToPfs) {
  auto monarch = Build("lz");
  ASSERT_OK(monarch);
  const std::string name = workload::SmallFilePath(spec_, 0);
  std::vector<std::byte> buf(2048);
  ASSERT_OK(monarch.value()->Read(name, 0, buf));
  monarch.value()->DrainPlacements();

  // Flip the staged chunk object's bytes behind the driver's back.
  const std::string object = pack::ChunkObjectName(name, 0);
  auto stored = local_->FileSize(object);
  ASSERT_OK(stored);
  std::vector<std::byte> garbage(stored.value(), std::byte{0x5C});
  ASSERT_OK(local_->Write(object, garbage));

  const auto corrupt_before = monarch.value()->Stats().fallbacks_corruption;
  ExpectSliceMatches(**monarch, 0, 0, 2048);  // correct despite corruption
  EXPECT_EQ(corrupt_before + 1,
            monarch.value()->Stats().fallbacks_corruption);
  // The bad copy was dropped; a later pass re-stages and serves it again.
  monarch.value()->DrainPlacements();
  ExpectSliceMatches(**monarch, 0, 0, 2048);
}

TEST_F(ChunkedReadTest, EvictionUnderPressureKeepsReadsCorrect) {
  // Quota holds ~3 files of chunks; LRU evicts chunk sets under pressure.
  auto monarch = Build("none", /*quota=*/12 * 1024, "lru");
  ASSERT_OK(monarch);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t f = 0; f < spec_.num_files; ++f) {
      ExpectSliceMatches(**monarch, f, 0, 4 * 1024);
    }
  }
  monarch.value()->DrainPlacements();
  const MonarchStats stats = monarch.value()->Stats();
  EXPECT_GT(stats.placement.chunks_evicted, 0u)
      << "staging past the quota must evict earlier chunk copies";
  EXPECT_LE(local_->TotalBytes(), 12 * 1024u);
  for (std::uint64_t f = 0; f < spec_.num_files; ++f) {
    ExpectSliceMatches(**monarch, f, 100, 2000);
  }
}

TEST_F(ChunkedReadTest, ZeroCopyLaneAssemblesIdenticalBytes) {
  for (const std::string codec : {"none", "lz"}) {
    auto monarch = Build(codec);
    ASSERT_OK(monarch);
    for (int pass = 0; pass < 2; ++pass) {  // cold then chunk-resident
      for (std::uint64_t f = 0; f < spec_.num_files; ++f) {
        const std::vector<std::byte> whole = Expected(f);
        const std::string name = workload::SmallFilePath(spec_, f);
        std::vector<std::byte> assembled;
        std::uint64_t offset = 0;
        while (offset < whole.size()) {
          auto lease = monarch.value()->ReadZeroCopy(name, offset);
          ASSERT_OK(lease);
          ASSERT_GT(lease.value().size(), 0u);
          const std::span<const std::byte> data = lease.value().data();
          assembled.insert(assembled.end(), data.begin(), data.end());
          offset += lease.value().size();
        }
        EXPECT_EQ(whole, assembled) << "codec " << codec << " file " << f
                                    << " pass " << pass;
      }
      monarch.value()->DrainPlacements();
    }
  }
}

TEST_F(ChunkedReadTest, CleanupDropsChunkCopies) {
  auto monarch = Build("none");
  ASSERT_OK(monarch);
  std::vector<std::byte> buf(1024);
  for (std::uint64_t f = 0; f < 4; ++f) {
    ASSERT_OK(
        monarch.value()->Read(workload::SmallFilePath(spec_, f), 0, buf));
  }
  monarch.value()->DrainPlacements();
  ASSERT_GT(local_->TotalBytes(), 0u);
  EXPECT_EQ(4u, monarch.value()->CleanupStagedCopies());
  EXPECT_EQ(0u, local_->TotalBytes());
  EXPECT_EQ(0u, monarch.value()->Stats().levels[0].occupancy_bytes);
}

// TSan stress: concurrent chunked readers racing chunk eviction driven
// by staging pressure on a tiny quota. Every read must return the right
// bytes no matter which side of an eviction it lands on.
TEST_F(ChunkedReadTest, ConcurrentReadersSurviveChunkEviction) {
  auto monarch = Build("lz", /*quota=*/8 * 1024, "lru");
  ASSERT_OK(monarch);
  std::vector<std::vector<std::byte>> expected;
  for (std::uint64_t f = 0; f < spec_.num_files; ++f) {
    expected.push_back(Expected(f));
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      std::vector<std::byte> buf(3 * 1024);
      for (int i = 0; i < 200 && !failed.load(); ++i) {
        const auto f = rng() % spec_.num_files;
        const auto& whole = expected[f];
        const std::uint64_t offset = rng() % whole.size();
        auto read = monarch.value()->Read(
            workload::SmallFilePath(spec_, f), offset, buf);
        if (!read.ok()) {
          failed.store(true);
          ADD_FAILURE() << read.status().ToString();
          break;
        }
        const std::size_t expect_n = static_cast<std::size_t>(
            std::min<std::uint64_t>(buf.size(), whole.size() - offset));
        if (read.value() != expect_n ||
            !std::equal(buf.begin(),
                        buf.begin() + static_cast<std::ptrdiff_t>(expect_n),
                        whole.begin() +
                            static_cast<std::ptrdiff_t>(offset))) {
          failed.store(true);
          ADD_FAILURE() << "wrong bytes: file " << f << " offset " << offset;
          break;
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  monarch.value()->DrainPlacements();
  EXPECT_GT(monarch.value()->Stats().placement.chunks_evicted, 0u)
      << "the stress run must actually exercise eviction";
}

}  // namespace
}  // namespace monarch::core
