#include "pack/pack_format.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "../test_support.h"
#include "pack/pack_index.h"
#include "pack/packed_engine.h"
#include "storage/memory_engine.h"
#include "util/crc32c.h"

namespace monarch::pack {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

std::vector<std::byte> Payload(std::size_t size, std::uint8_t tag) {
  std::vector<std::byte> out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<std::byte>((tag + i * 7) & 0xFFU);
  }
  return out;
}

TEST(PackFormatTest, WriterRoundTripsThroughIndex) {
  storage::MemoryEngine engine("pfs");
  PackWriter writer(engine, "data", /*extent_bytes=*/1024);
  std::vector<std::pair<std::string, std::vector<std::byte>>> files;
  for (int i = 0; i < 9; ++i) {
    files.emplace_back("data/f" + std::to_string(i),
                       Payload(300 + 40 * static_cast<std::size_t>(i),
                               static_cast<std::uint8_t>(i)));
    ASSERT_OK(writer.Add(files.back().first, files.back().second));
  }
  ASSERT_OK(writer.Finish());
  EXPECT_EQ(9u, writer.logical_files());
  EXPECT_GT(writer.extents_written(), 1u)
      << "1 KiB extents over ~4 KiB of payload must cut several extents";

  auto index = PackIndex::Load(engine, "data");
  ASSERT_OK(index);
  EXPECT_EQ(9u, index.value()->logical_files());
  EXPECT_EQ(writer.extents_written(), index.value()->extent_count());
  EXPECT_EQ(writer.logical_bytes(), index.value()->logical_bytes());

  for (const auto& [name, payload] : files) {
    const PackEntry* entry = index.value()->Find(name);
    ASSERT_NE(nullptr, entry) << name;
    EXPECT_EQ(payload.size(), entry->length);
    EXPECT_EQ(Crc32c(payload), entry->crc32c);
    std::vector<std::byte> readback(entry->length);
    auto read = engine.Read(index.value()->ExtentPathOf(*entry),
                            entry->offset, readback);
    ASSERT_OK(read);
    ASSERT_EQ(readback.size(), read.value());
    EXPECT_EQ(payload, readback) << name;
  }
}

TEST(PackFormatTest, OversizedFileGetsItsOwnExtent) {
  storage::MemoryEngine engine("pfs");
  PackWriter writer(engine, "data", /*extent_bytes=*/256);
  ASSERT_OK(writer.Add("data/big", Payload(4096, 1)));
  ASSERT_OK(writer.Add("data/small", Payload(64, 2)));
  ASSERT_OK(writer.Finish());
  auto index = PackIndex::Load(engine, "data");
  ASSERT_OK(index);
  const PackEntry* big = index.value()->Find("data/big");
  ASSERT_NE(nullptr, big);
  EXPECT_EQ(4096u, big->length) << "large files are not split";
}

TEST(PackFormatTest, WriterRejectsBadNames) {
  storage::MemoryEngine engine("pfs");
  PackWriter writer(engine, "data", 1024);
  ASSERT_OK(writer.Add("data/ok", Payload(16, 0)));
  EXPECT_STATUS_CODE(StatusCode::kAlreadyExists,
                     writer.Add("data/ok", Payload(16, 0)));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     writer.Add("", Payload(16, 0)));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     writer.Add("data/a#c0", Payload(16, 0)));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     writer.Add("data/.pack/evil", Payload(16, 0)));
}

TEST(PackFormatTest, LoadWithoutIndexIsNotFound) {
  storage::MemoryEngine engine("pfs");
  EXPECT_STATUS_CODE(StatusCode::kNotFound, PackIndex::Load(engine, "data"));
}

TEST(PackFormatTest, LoadRejectsTruncatedIndex) {
  storage::MemoryEngine engine("pfs");
  PackWriter writer(engine, "data", 1024);
  ASSERT_OK(writer.Add("data/f", Payload(128, 3)));
  ASSERT_OK(writer.Finish());
  const std::string index_path = IndexPath("data");
  auto size = engine.FileSize(index_path);
  ASSERT_OK(size);
  std::vector<std::byte> bytes(size.value() - 3);
  ASSERT_OK(engine.Read(index_path, 0, bytes));
  ASSERT_OK(engine.Write(index_path, bytes));
  EXPECT_STATUS_CODE(StatusCode::kDataLoss, PackIndex::Load(engine, "data"));
}

TEST(PackFormatTest, InternalPathsAreRecognised) {
  EXPECT_TRUE(IsPackInternalPath("data/.pack/index.mpki"));
  EXPECT_TRUE(IsPackInternalPath(".pack/extent-000000.mpk"));
  EXPECT_FALSE(IsPackInternalPath("data/file.bin"));
  EXPECT_FALSE(IsPackInternalPath("data/pack/file.bin"));
}

class PackedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::make_shared<storage::MemoryEngine>("pfs");
    PackWriter writer(*base_, "data", 512);
    for (int i = 0; i < 5; ++i) {
      payloads_.push_back(Payload(200 + 30 * static_cast<std::size_t>(i),
                                  static_cast<std::uint8_t>(i)));
      ASSERT_OK(
          writer.Add("data/f" + std::to_string(i), payloads_.back()));
    }
    ASSERT_OK(writer.Finish());
    ASSERT_OK(base_->Write("data/loose", Bytes("loose bytes")));
    auto index = PackIndex::Load(*base_, "data");
    ASSERT_OK(index);
    engine_ = std::make_shared<PackedPfsEngine>(base_, index.value());
  }

  std::shared_ptr<storage::MemoryEngine> base_;
  std::vector<std::vector<std::byte>> payloads_;
  std::shared_ptr<PackedPfsEngine> engine_;
};

TEST_F(PackedEngineTest, ReadsRedirectIntoExtents) {
  for (int i = 0; i < 5; ++i) {
    const std::string name = "data/f" + std::to_string(i);
    auto size = engine_->FileSize(name);
    ASSERT_OK(size);
    ASSERT_EQ(payloads_[static_cast<std::size_t>(i)].size(), size.value());
    std::vector<std::byte> buf(size.value());
    auto read = engine_->Read(name, 0, buf);
    ASSERT_OK(read);
    EXPECT_EQ(payloads_[static_cast<std::size_t>(i)], buf);
  }
}

TEST_F(PackedEngineTest, PartialReadsClipAtLogicalEof) {
  std::vector<std::byte> buf(64);
  auto read = engine_->Read("data/f0", payloads_[0].size() - 10, buf);
  ASSERT_OK(read);
  EXPECT_EQ(10u, read.value())
      << "reads must clip at the logical file end, not the extent end";
  auto past = engine_->Read("data/f0", payloads_[0].size() + 5, buf);
  ASSERT_OK(past);
  EXPECT_EQ(0u, past.value());
}

TEST_F(PackedEngineTest, ZeroCopyServesPackedSlices) {
  auto view = engine_->ReadZeroCopy("data/f1", 8, 32);
  ASSERT_OK(view);
  ASSERT_EQ(32u, view.value().size());
  EXPECT_EQ(0, std::memcmp(view.value().data().data(),
                           payloads_[1].data() + 8, 32));
}

TEST_F(PackedEngineTest, LooseFilesStillWork) {
  std::vector<std::byte> buf(11);
  ASSERT_OK(engine_->Read("data/loose", 0, buf));
  EXPECT_EQ("loose bytes", Text(buf));
}

TEST_F(PackedEngineTest, PackedNamesAreReadOnly) {
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     engine_->Write("data/f0", Bytes("nope")));
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     engine_->Delete("data/f0"));
}

TEST_F(PackedEngineTest, ListMergesLogicalNamesAndHidesInternals) {
  auto files = engine_->ListFiles("data");
  ASSERT_OK(files);
  std::vector<std::string> names;
  for (const auto& st : files.value()) names.push_back(st.path);
  EXPECT_EQ(6u, names.size()) << "5 packed + 1 loose, no .pack internals";
  for (const auto& name : names) {
    EXPECT_FALSE(IsPackInternalPath(name)) << name;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace monarch::pack
