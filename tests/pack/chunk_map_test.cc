#include "pack/chunk_map.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace monarch::pack {
namespace {

TEST(ChunkMapTest, GeometryWithShortTail) {
  ChunkMap cm(/*file_bytes=*/1000, /*chunk_bytes=*/256);
  EXPECT_EQ(4u, cm.num_chunks());
  EXPECT_EQ(256u, cm.ChunkLogicalBytes(0));
  EXPECT_EQ(232u, cm.ChunkLogicalBytes(3)) << "tail chunk is short";
  EXPECT_EQ(0u, cm.ChunkOf(255));
  EXPECT_EQ(1u, cm.ChunkOf(256));
  EXPECT_EQ(768u, cm.ChunkOffset(3));
}

TEST(ChunkMapTest, ClaimPublishEvictLifecycle) {
  ChunkMap cm(1000, 256);
  ASSERT_TRUE(cm.TryClaim(1));
  EXPECT_FALSE(cm.TryClaim(1)) << "claims are exclusive";
  EXPECT_EQ(1u, cm.Claims());

  ChunkMap::ChunkMeta meta;
  meta.stored_bytes = 100;
  meta.crc_stored = 0xAB;
  meta.crc_logical = 0xCD;
  {
    std::lock_guard lock(cm.placement_mutex());
    EXPECT_EQ(0, cm.AssignTier(0));
    EXPECT_EQ(1u, cm.Publish(1, meta));
  }
  EXPECT_TRUE(cm.IsResident(1));
  EXPECT_EQ(0u, cm.Claims()) << "publish releases the claim";
  EXPECT_EQ(100u, cm.ResidentStoredBytes());
  EXPECT_EQ(256u, cm.ResidentLogicalBytes());
  EXPECT_EQ(0xABu, cm.Meta(1).crc_stored);
  EXPECT_FALSE(cm.TryClaim(1)) << "resident chunks cannot be claimed";

  {
    std::lock_guard lock(cm.placement_mutex());
    EXPECT_EQ(100u, cm.TryEvict(1));
    EXPECT_EQ(0u, cm.TryEvict(1)) << "double-evict loses the race";
    cm.MaybeResetTier();
  }
  EXPECT_FALSE(cm.IsResident(1));
  EXPECT_EQ(0u, cm.ResidentStoredBytes());
  EXPECT_EQ(-1, cm.tier()) << "tier resets once nothing is resident";
}

TEST(ChunkMapTest, RangeResident) {
  ChunkMap cm(1024, 256);
  EXPECT_TRUE(cm.RangeResident(0, 0)) << "empty ranges are trivially resident";
  EXPECT_FALSE(cm.RangeResident(0, 1));
  for (std::uint32_t c : {1u, 2u}) {
    ASSERT_TRUE(cm.TryClaim(c));
    std::lock_guard lock(cm.placement_mutex());
    cm.Publish(c, {});
  }
  EXPECT_TRUE(cm.RangeResident(256, 512));
  EXPECT_TRUE(cm.RangeResident(300, 100));
  EXPECT_FALSE(cm.RangeResident(0, 512)) << "chunk 0 is absent";
  EXPECT_FALSE(cm.RangeResident(700, 200)) << "chunk 3 is absent";
}

TEST(ChunkMapTest, TierStaysWhileClaimsOutstanding) {
  ChunkMap cm(512, 256);
  ASSERT_TRUE(cm.TryClaim(0));
  {
    std::lock_guard lock(cm.placement_mutex());
    EXPECT_EQ(1, cm.AssignTier(1));
    EXPECT_EQ(1, cm.AssignTier(0)) << "first assignment wins";
    cm.MaybeResetTier();
  }
  EXPECT_EQ(1, cm.tier()) << "an outstanding claim pins the tier";
  cm.ReleaseClaim(0);
  {
    std::lock_guard lock(cm.placement_mutex());
    cm.MaybeResetTier();
  }
  EXPECT_EQ(-1, cm.tier());
}

TEST(ChunkMapTest, ConcurrentClaimersGetDisjointChunks) {
  constexpr std::uint32_t kChunks = 256;
  ChunkMap cm(kChunks * 64, 64);
  std::atomic<std::uint32_t> claimed{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      std::uint32_t mine = 0;
      for (std::uint32_t c = 0; c < kChunks; ++c) {
        if (cm.TryClaim(c)) ++mine;
      }
      claimed.fetch_add(mine);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(kChunks, claimed.load())
      << "every chunk must be claimed exactly once across racing claimers";
  EXPECT_EQ(kChunks, cm.Claims());
}

TEST(ChunkMapTest, ConcurrentPublishersAndReaders) {
  constexpr std::uint32_t kChunks = 128;
  ChunkMap cm(kChunks * 32, 32);
  std::thread publisher([&] {
    for (std::uint32_t c = 0; c < kChunks; ++c) {
      ASSERT_TRUE(cm.TryClaim(c));
      ChunkMap::ChunkMeta meta;
      meta.stored_bytes = c + 1;
      meta.crc_stored = c;
      meta.crc_logical = ~c;
      std::lock_guard lock(cm.placement_mutex());
      cm.AssignTier(0);
      cm.Publish(c, meta);
    }
  });
  std::thread reader([&] {
    // A resident bit must imply coherent meta (publish-release ordering).
    for (int pass = 0; pass < 64; ++pass) {
      for (std::uint32_t c = 0; c < kChunks; ++c) {
        if (cm.IsResident(c)) {
          const ChunkMap::ChunkMeta meta = cm.Meta(c);
          ASSERT_EQ(c + 1, meta.stored_bytes);
          ASSERT_EQ(c, meta.crc_stored);
        }
      }
    }
  });
  publisher.join();
  reader.join();
  EXPECT_EQ(kChunks, cm.ResidentCount());
}

}  // namespace
}  // namespace monarch::pack
