#include "pack/codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "../test_support.h"
#include "util/rng.h"

namespace monarch::pack {
namespace {

std::vector<std::byte> RunHeavyPayload(std::size_t size) {
  std::vector<std::byte> out(size);
  Xoshiro256 rng(11);
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::uint64_t word = rng();
    const std::size_t seg =
        std::min<std::size_t>(out.size() - pos,
                              16 + static_cast<std::size_t>(word % 80));
    if ((word & 1) != 0) {
      std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(pos), seg,
                  static_cast<std::byte>(word & 0xFFU));
    } else {
      for (std::size_t j = 0; j < seg; ++j) {
        out[pos + j] = static_cast<std::byte>(rng() & 0xFFU);
      }
    }
    pos += seg;
  }
  return out;
}

std::vector<std::byte> NoisePayload(std::size_t size) {
  std::vector<std::byte> out(size);
  Xoshiro256 rng(13);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xFFU);
  return out;
}

void ExpectRoundTrip(const Codec& codec,
                     const std::vector<std::byte>& logical) {
  std::vector<std::byte> stored;
  ASSERT_OK(codec.Encode(logical, stored));
  EXPECT_LE(stored.size(), codec.MaxStoredSize(logical.size()));
  std::vector<std::byte> decoded(logical.size());
  ASSERT_OK(codec.Decode(stored, decoded));
  EXPECT_EQ(logical, decoded);
}

TEST(PackCodecTest, CodecByNameResolvesBothCodecs) {
  auto none = CodecByName("none");
  ASSERT_OK(none);
  EXPECT_EQ("none", none.value()->Name());
  auto lz = CodecByName("lz");
  ASSERT_OK(lz);
  EXPECT_EQ("lz", lz.value()->Name());
  // Singletons: the read path keeps raw pointers for the process life.
  EXPECT_EQ(none.value(), CodecByName("none").value());
}

TEST(PackCodecTest, CodecByNameRejectsUnknown) {
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument, CodecByName("zstd"));
}

TEST(PackCodecTest, NoneIsIdentity) {
  const Codec* codec = CodecByName("none").value();
  const auto logical = NoisePayload(4096);
  std::vector<std::byte> stored;
  ASSERT_OK(codec->Encode(logical, stored));
  EXPECT_EQ(logical, stored);
  ExpectRoundTrip(*codec, logical);
}

TEST(PackCodecTest, LzRoundTripsVariedPayloads) {
  const Codec* codec = CodecByName("lz").value();
  ExpectRoundTrip(*codec, {});
  ExpectRoundTrip(*codec, testing::Bytes("x"));
  ExpectRoundTrip(*codec, testing::Bytes("abcabcabcabcabcabcabcabc"));
  ExpectRoundTrip(*codec, RunHeavyPayload(64 * 1024));
  ExpectRoundTrip(*codec, NoisePayload(64 * 1024));
  std::vector<std::byte> all_same(32 * 1024, std::byte{0x5A});
  ExpectRoundTrip(*codec, all_same);
}

TEST(PackCodecTest, LzCompressesRunHeavyData) {
  const Codec* codec = CodecByName("lz").value();
  const auto logical = RunHeavyPayload(256 * 1024);
  std::vector<std::byte> stored;
  ASSERT_OK(codec->Encode(logical, stored));
  EXPECT_LT(stored.size(), logical.size() * 2 / 3)
      << "run-heavy data must compress well below the 1.5x capacity gate";
}

TEST(PackCodecTest, LzDecodeRejectsTruncatedStream) {
  const Codec* codec = CodecByName("lz").value();
  const auto logical = RunHeavyPayload(8 * 1024);
  std::vector<std::byte> stored;
  ASSERT_OK(codec->Encode(logical, stored));
  std::vector<std::byte> decoded(logical.size());
  stored.resize(stored.size() / 2);
  EXPECT_STATUS_CODE(StatusCode::kDataLoss, codec->Decode(stored, decoded));
}

TEST(PackCodecTest, LzDecodeRejectsWrongLogicalSize) {
  const Codec* codec = CodecByName("lz").value();
  const auto logical = RunHeavyPayload(8 * 1024);
  std::vector<std::byte> stored;
  ASSERT_OK(codec->Encode(logical, stored));
  std::vector<std::byte> short_out(logical.size() - 1);
  EXPECT_STATUS_CODE(StatusCode::kDataLoss,
                     codec->Decode(stored, short_out));
}

TEST(PackCodecTest, LzDecodeSurvivesGarbageWithoutCrashing) {
  // Bounds safety: random bytes must never read or write out of range;
  // any status (ok by fluke or DATA_LOSS) is acceptable, crashing is not.
  const Codec* codec = CodecByName("lz").value();
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<std::byte> garbage(1 + (rng() % 512));
    for (auto& b : garbage) b = static_cast<std::byte>(rng() & 0xFFU);
    std::vector<std::byte> decoded(256);
    (void)codec->Decode(garbage, decoded);
  }
}

}  // namespace
}  // namespace monarch::pack
