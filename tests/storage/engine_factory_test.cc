#include "storage/engine_factory.h"

#include <gtest/gtest.h>

#include "../test_support.h"
#include "storage/throttled_engine.h"

namespace monarch::storage {
namespace {

using monarch::testing::Bytes;
using monarch::testing::TempDir;

TEST(EngineFactoryTest, LocalSsdEngineReadsWrites) {
  TempDir dir("factory_ssd");
  auto engine = MakeLocalSsdEngine(dir.path());
  ASSERT_OK(engine->Write("f", Bytes("payload")));
  std::vector<std::byte> buf(7);
  ASSERT_OK(engine->Read("f", 0, buf));
  EXPECT_EQ("local@local-ssd", engine->Name());
}

TEST(EngineFactoryTest, LustreEngineNamesItsProfile) {
  TempDir dir("factory_lustre");
  auto contended = MakeLustreEngine(dir.path(), 1, /*contended=*/true);
  auto quiet = MakeLustreEngine(dir.path(), 1, /*contended=*/false);
  EXPECT_EQ("pfs@lustre-pfs", contended->Name());
  EXPECT_EQ("pfs@lustre-pfs", quiet->Name());
  ASSERT_OK(contended->Write("f", Bytes("x")));
  EXPECT_TRUE(quiet->Exists("f").value())
      << "both wrap the same host directory";
}

TEST(EngineFactoryTest, RamEngineIsSelfContained) {
  auto engine = MakeRamEngine();
  ASSERT_OK(engine->Write("f", Bytes("in-ram")));
  std::vector<std::byte> buf(6);
  auto read = engine->Read("f", 0, buf);
  ASSERT_OK(read);
  EXPECT_EQ(6u, read.value());
  EXPECT_EQ("ram@ram", engine->Name());
}

TEST(EngineFactoryTest, RawEngineHasNoDeviceModel) {
  TempDir dir("factory_raw");
  auto engine = MakeRawEngine(dir.path());
  EXPECT_EQ("raw", engine->Name());
  // Raw engines are PosixEngine directly, not throttled wrappers.
  EXPECT_EQ(nullptr, std::dynamic_pointer_cast<ThrottledEngine>(engine));
}

TEST(EngineFactoryTest, SimulatedEnginesShareDirectoryWithRaw) {
  // The bench workflow: generate with the raw engine, serve through the
  // simulated ones. All three views must agree on content.
  TempDir dir("factory_shared");
  auto raw = MakeRawEngine(dir.path());
  ASSERT_OK(raw->Write("data/f", Bytes("shared-bytes")));

  auto ssd = MakeLocalSsdEngine(dir.path());
  auto lustre = MakeLustreEngine(dir.path(), 3, false);
  std::vector<std::byte> buf(12);
  ASSERT_OK(ssd->Read("data/f", 0, buf));
  EXPECT_EQ("shared-bytes", monarch::testing::Text(buf));
  ASSERT_OK(lustre->Read("data/f", 0, buf));
  EXPECT_EQ("shared-bytes", monarch::testing::Text(buf));
}

}  // namespace
}  // namespace monarch::storage
