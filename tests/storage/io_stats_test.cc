#include "storage/io_stats.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace monarch::storage {
namespace {

TEST(IoStatsTest, StartsAtZero) {
  IoStats stats;
  const auto snap = stats.Snapshot();
  EXPECT_EQ(0u, snap.read_ops);
  EXPECT_EQ(0u, snap.write_ops);
  EXPECT_EQ(0u, snap.metadata_ops);
  EXPECT_EQ(0u, snap.total_ops());
}

TEST(IoStatsTest, RecordsAccumulate) {
  IoStats stats;
  stats.RecordRead(100, Micros(10));
  stats.RecordRead(50, Micros(20));
  stats.RecordWrite(30);
  stats.RecordMetadataOp();

  const auto snap = stats.Snapshot();
  EXPECT_EQ(2u, snap.read_ops);
  EXPECT_EQ(1u, snap.write_ops);
  EXPECT_EQ(1u, snap.metadata_ops);
  EXPECT_EQ(150u, snap.bytes_read);
  EXPECT_EQ(30u, snap.bytes_written);
  EXPECT_EQ(3u, snap.data_ops());
  EXPECT_EQ(4u, snap.total_ops());
}

TEST(IoStatsTest, ReadLatencyHistogramPopulated) {
  IoStats stats;
  stats.RecordRead(1, Micros(500));
  const auto latency = stats.ReadLatency();
  EXPECT_EQ(1u, latency.count);
  EXPECT_EQ(500u, latency.min_us);
}

TEST(IoStatsTest, SnapshotSubtractionGivesDeltas) {
  IoStats stats;
  stats.RecordRead(100, Micros(1));
  const auto before = stats.Snapshot();
  stats.RecordRead(200, Micros(1));
  stats.RecordWrite(50);
  const auto delta = stats.Snapshot() - before;
  EXPECT_EQ(1u, delta.read_ops);
  EXPECT_EQ(1u, delta.write_ops);
  EXPECT_EQ(200u, delta.bytes_read);
  EXPECT_EQ(50u, delta.bytes_written);
}

TEST(IoStatsTest, SnapshotAdditionAggregates) {
  IoStatsSnapshot a;
  a.read_ops = 2;
  a.bytes_read = 10;
  IoStatsSnapshot b;
  b.read_ops = 3;
  b.bytes_read = 5;
  b.metadata_ops = 1;
  a += b;
  EXPECT_EQ(5u, a.read_ops);
  EXPECT_EQ(15u, a.bytes_read);
  EXPECT_EQ(1u, a.metadata_ops);
}

TEST(IoStatsTest, ResetZeroes) {
  IoStats stats;
  stats.RecordRead(100, Micros(1));
  stats.Reset();
  EXPECT_EQ(0u, stats.Snapshot().total_ops());
  EXPECT_EQ(0u, stats.ReadLatency().count);
}

TEST(IoStatsTest, ToStringMentionsCounts) {
  IoStats stats;
  stats.RecordRead(2048, Micros(1));
  const std::string text = stats.Snapshot().ToString();
  EXPECT_NE(std::string::npos, text.find("reads=1"));
  EXPECT_NE(std::string::npos, text.find("2.0 KiB"));
}

TEST(IoStatsTest, ConcurrentRecordingLosesNothing) {
  IoStats stats;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < kOps; ++i) {
        stats.RecordRead(1, Micros(1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = stats.Snapshot();
  EXPECT_EQ(static_cast<std::uint64_t>(kThreads * kOps), snap.read_ops);
  EXPECT_EQ(static_cast<std::uint64_t>(kThreads * kOps), snap.bytes_read);
}

}  // namespace
}  // namespace monarch::storage
