#include "storage/device_model.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/clock.h"

namespace monarch::storage {
namespace {

DeviceProfile FastProfile() {
  DeviceProfile p;
  p.name = "fast-test";
  p.read_bandwidth_bps = 100e6;   // 100 MB/s
  p.write_bandwidth_bps = 100e6;
  p.read_latency = Micros(50);
  p.write_latency = Micros(50);
  p.metadata_latency = Micros(20);
  return p;
}

TEST(DeviceProfileTest, PresetsAreOrderedByPerformance) {
  const auto ram = DeviceProfile::RamDisk();
  const auto ssd = DeviceProfile::LocalSsd();
  const auto pfs = DeviceProfile::LustrePfs();
  EXPECT_GT(ram.read_bandwidth_bps, ssd.read_bandwidth_bps);
  EXPECT_GT(ssd.read_bandwidth_bps, pfs.read_bandwidth_bps);
  EXPECT_LT(ram.read_latency, ssd.read_latency);
  EXPECT_LT(ssd.read_latency, pfs.read_latency);
  EXPECT_LT(ssd.metadata_latency, pfs.metadata_latency);
}

TEST(DeviceModelTest, ChargeReadTakesAtLeastLatency) {
  DeviceModel model(FastProfile());
  const Stopwatch timer;
  model.ChargeRead(0);
  EXPECT_GE(timer.Elapsed(), Micros(40));
}

TEST(DeviceModelTest, LargeTransferDominatedByBandwidth) {
  DeviceModel model(FastProfile());
  // Drain the burst allowance first so the next read pays full price.
  model.ChargeRead(10 * 1024 * 1024);
  const Stopwatch timer;
  model.ChargeRead(5 * 1024 * 1024);  // 5 MiB at 100 MB/s ~ 52 ms
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.025);
  EXPECT_LT(elapsed, 0.5);
}

TEST(DeviceModelTest, PredictReadMatchesProfileMath) {
  DeviceModel model(FastProfile());
  const Duration predicted = model.PredictRead(1'000'000);
  // 1 MB at 100 MB/s = 10 ms, plus 50 us latency.
  EXPECT_NEAR(0.01005, ToSeconds(predicted), 1e-4);
}

TEST(DeviceModelTest, ContentionStretchesServiceTime) {
  // A permanently-degraded contention model (factor 0.25) must make the
  // same transfer take ~4x longer than the uncontended device.
  auto degraded_states = std::vector<LoadState>{
      {"degraded", 0.25, 1.0, 1000.0, {1.0}},
  };

  DeviceModel quiet(FastProfile());
  DeviceModel contended(FastProfile(),
                        ContentionModel(std::move(degraded_states), 1));

  constexpr std::uint64_t kBytes = 4 * 1024 * 1024;
  // Exhaust both bursts.
  quiet.ChargeRead(10 * 1024 * 1024);
  contended.ChargeRead(10 * 1024 * 1024);

  Stopwatch t1;
  quiet.ChargeRead(kBytes);
  const double quiet_time = t1.ElapsedSeconds();

  Stopwatch t2;
  contended.ChargeRead(kBytes);
  const double contended_time = t2.ElapsedSeconds();

  EXPECT_GT(contended_time, quiet_time * 2.0)
      << "quiet=" << quiet_time << " contended=" << contended_time;
}

TEST(DeviceModelTest, MetadataChargeUsesMetadataLatency) {
  auto profile = FastProfile();
  profile.metadata_latency = Millis(5);
  DeviceModel model(profile);
  const Stopwatch timer;
  model.ChargeMetadata();
  EXPECT_GE(timer.Elapsed(), Millis(4));
}

TEST(DeviceModelTest, SharedBucketSerialisesConcurrentReaders) {
  // 4 threads x 2 MiB through a 100 MB/s device: the bucket must make the
  // aggregate take ~80 ms, not ~20 ms.
  DeviceModel model(FastProfile());
  model.ChargeRead(10 * 1024 * 1024);  // drain burst
  const Stopwatch timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&model] { model.ChargeRead(2 * 1024 * 1024); });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(timer.ElapsedSeconds(), 0.05);
}

}  // namespace
}  // namespace monarch::storage
