// StorageEngine::WriteAt generic fallback (satellite of ISSUE 5): an
// engine with no native partial write gets read-splice-write from the
// base class. The checkpoint drain and the staging pipeline both stream
// files as chunked WriteAt calls, so the fallback must assemble exact
// bytes — in order, out of order, with zero-filled gaps, and with many
// writers streaming *different* files concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "../test_support.h"
#include "storage/memory_engine.h"
#include "util/crc32c.h"

namespace monarch::storage {
namespace {

/// Pass-through wrapper that deliberately does NOT override WriteAt, so
/// every partial write goes through the base class's read-splice-write.
class FallbackOnlyEngine final : public StorageEngine {
 public:
  explicit FallbackOnlyEngine(StorageEnginePtr inner)
      : inner_(std::move(inner)) {}

  Result<std::size_t> Read(std::string_view path, std::uint64_t offset,
                           std::span<std::byte> dst) override {
    return inner_->Read(path, offset, dst);
  }
  Status Write(const std::string& path,
               std::span<const std::byte> data) override {
    return inner_->Write(path, data);
  }
  Status Delete(const std::string& path) override {
    return inner_->Delete(path);
  }
  Result<std::uint64_t> FileSize(const std::string& path) override {
    return inner_->FileSize(path);
  }
  Result<bool> Exists(const std::string& path) override {
    return inner_->Exists(path);
  }
  Result<std::vector<FileStat>> ListFiles(const std::string& dir) override {
    return inner_->ListFiles(dir);
  }
  IoStats& Stats() override { return inner_->Stats(); }
  [[nodiscard]] std::string Name() const override {
    return inner_->Name() + "+fallback";
  }

 private:
  StorageEnginePtr inner_;
};

std::vector<std::byte> Pattern(std::size_t bytes, std::uint64_t seed) {
  std::vector<std::byte> data(bytes);
  std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 1;
  for (std::byte& b : data) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    b = static_cast<std::byte>(state >> 56);
  }
  return data;
}

TEST(WriteAtFallbackTest, ChunkedSequentialWriteAssemblesFile) {
  FallbackOnlyEngine engine(std::make_shared<MemoryEngine>("mem"));
  const auto data = Pattern(10'000, 1);
  constexpr std::size_t kChunk = 1024;
  for (std::size_t offset = 0; offset < data.size(); offset += kChunk) {
    const std::size_t n = std::min(kChunk, data.size() - offset);
    ASSERT_OK(engine.WriteAt("f", offset,
                             std::span<const std::byte>(data).subspan(
                                 offset, n)));
  }
  std::vector<std::byte> out(data.size());
  auto read = engine.Read("f", 0, out);
  ASSERT_OK(read);
  EXPECT_EQ(data.size(), read.value());
  EXPECT_EQ(data, out);
}

TEST(WriteAtFallbackTest, OutOfOrderChunksAndGapZeroFill) {
  FallbackOnlyEngine engine(std::make_shared<MemoryEngine>("mem"));
  const auto tail = Pattern(100, 2);
  const auto head = Pattern(100, 3);
  // Tail first: the file must grow and zero-fill the [0, 400) gap.
  ASSERT_OK(engine.WriteAt("f", 400, tail));
  ASSERT_OK(engine.WriteAt("f", 0, head));
  auto size = engine.FileSize("f");
  ASSERT_OK(size);
  EXPECT_EQ(500u, size.value());

  std::vector<std::byte> out(500);
  ASSERT_OK(engine.Read("f", 0, out));
  EXPECT_TRUE(std::equal(head.begin(), head.end(), out.begin()));
  for (std::size_t i = 100; i < 400; ++i) {
    EXPECT_EQ(std::byte{0}, out[i]) << "gap byte " << i;
  }
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(), out.begin() + 400));
}

TEST(WriteAtFallbackTest, OverwriteSpliceKeepsSurroundingBytes) {
  FallbackOnlyEngine engine(std::make_shared<MemoryEngine>("mem"));
  const auto base = Pattern(1000, 4);
  ASSERT_OK(engine.Write("f", base));
  const auto patch = Pattern(64, 5);
  ASSERT_OK(engine.WriteAt("f", 500, patch));

  std::vector<std::byte> expect = base;
  std::copy(patch.begin(), patch.end(), expect.begin() + 500);
  std::vector<std::byte> out(expect.size());
  ASSERT_OK(engine.Read("f", 0, out));
  EXPECT_EQ(expect, out);
}

TEST(WriteAtFallbackTest, ConcurrentWritersOnDistinctFiles) {
  // The staging pipeline and checkpoint drain run several chunked
  // streams at once, each to its own path. The fallback must keep them
  // independent: every finished file checksums exactly, no matter how
  // the writers interleave.
  FallbackOnlyEngine engine(std::make_shared<MemoryEngine>("mem"));
  constexpr int kWriters = 8;
  constexpr std::size_t kBytes = 64 * 1024;
  constexpr std::size_t kChunk = 4 * 1024;

  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    payloads.push_back(Pattern(kBytes, 100 + static_cast<std::uint64_t>(w)));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::string path = "f" + std::to_string(w);
      const auto& data = payloads[static_cast<std::size_t>(w)];
      for (std::size_t offset = 0; offset < data.size(); offset += kChunk) {
        const auto chunk =
            std::span<const std::byte>(data).subspan(offset, kChunk);
        if (!engine.WriteAt(path, offset, chunk).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(0, failures.load());

  for (int w = 0; w < kWriters; ++w) {
    std::vector<std::byte> out(kBytes);
    auto read = engine.Read("f" + std::to_string(w), 0, out);
    ASSERT_OK(read);
    ASSERT_EQ(kBytes, read.value());
    EXPECT_EQ(Crc32c(payloads[static_cast<std::size_t>(w)]), Crc32c(out))
        << "writer " << w;
  }
}

}  // namespace
}  // namespace monarch::storage
