#include "storage/contention_model.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/clock.h"

namespace monarch::storage {
namespace {

TEST(ContentionModelTest, DefaultIsStaticAndUncontended) {
  ContentionModel model;
  EXPECT_TRUE(model.IsStatic());
  const auto sample = model.Current(SteadyClock::now());
  EXPECT_DOUBLE_EQ(1.0, sample.bandwidth_factor);
  EXPECT_DOUBLE_EQ(1.0, sample.latency_multiplier);
}

TEST(ContentionModelTest, SharedPfsHasFourStates) {
  auto model = ContentionModel::SharedPfs(1);
  EXPECT_FALSE(model.IsStatic());
  EXPECT_EQ(4u, model.states().size());
  for (const LoadState& s : model.states()) {
    EXPECT_GT(s.bandwidth_factor, 0.0);
    EXPECT_LE(s.bandwidth_factor, 1.0);
    EXPECT_GE(s.latency_multiplier, 1.0);
    EXPECT_EQ(4u, s.transition_weights.size());
  }
}

TEST(ContentionModelTest, SamplesAlwaysValid) {
  auto model = ContentionModel::SharedPfs(7);
  const TimePoint start = SteadyClock::now();
  for (int i = 0; i < 10000; ++i) {
    // Walk virtual time forward in 50ms steps (several hundred seconds
    // of simulated load evolution).
    const auto sample = model.Current(start + Millis(50) * i);
    EXPECT_GT(sample.bandwidth_factor, 0.0);
    EXPECT_LE(sample.bandwidth_factor, 1.0);
    EXPECT_GE(sample.latency_multiplier, 1.0);
    EXPECT_LT(sample.state_index, 4u);
  }
}

TEST(ContentionModelTest, ChainVisitsMultipleStates) {
  auto model = ContentionModel::SharedPfs(3);
  const TimePoint start = SteadyClock::now();
  std::set<std::size_t> visited;
  for (int i = 0; i < 5000; ++i) {
    visited.insert(model.Current(start + Millis(100) * i).state_index);
  }
  // Over ~500 simulated seconds the chain must churn through most states.
  EXPECT_GE(visited.size(), 3u);
}

TEST(ContentionModelTest, MonotonicTimeNeverGoesBackward) {
  // Calling Current with an older timestamp (can happen across threads)
  // must not crash or corrupt the chain.
  auto model = ContentionModel::SharedPfs(5);
  const TimePoint start = SteadyClock::now();
  model.Current(start + Millis(500));
  const auto sample = model.Current(start);  // older than last call
  EXPECT_GT(sample.bandwidth_factor, 0.0);
}

TEST(ContentionModelTest, ThreadSafeUnderConcurrentSampling) {
  auto model = ContentionModel::SharedPfs(9);
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  const TimePoint start = SteadyClock::now();
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5000; ++i) {
        const auto s = model.Current(start + Millis(t * 7 + i));
        if (s.bandwidth_factor <= 0.0 || s.latency_multiplier < 1.0) {
          ok.store(false);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
}

TEST(ContentionModelTest, CustomStatesRespected) {
  std::vector<LoadState> states{
      {"only", 0.5, 2.0, 1.0, {1.0}},
  };
  ContentionModel model(std::move(states), 1);
  // Single custom state: IsStatic() treats it as fixed conditions.
  const auto sample = model.Current(SteadyClock::now());
  EXPECT_DOUBLE_EQ(0.5, sample.bandwidth_factor);
  EXPECT_DOUBLE_EQ(2.0, sample.latency_multiplier);
}

}  // namespace
}  // namespace monarch::storage
