#include "storage/faulty_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../test_support.h"
#include "storage/memory_engine.h"

namespace monarch::storage {
namespace {

using monarch::testing::Bytes;

std::shared_ptr<FaultyEngine> MakeFaulty(FaultyEngine::FaultSpec spec = {}) {
  auto inner = std::make_shared<MemoryEngine>("m");
  return std::make_shared<FaultyEngine>(inner, spec);
}

TEST(FaultyEngineTest, NoFaultsByDefault) {
  auto engine = MakeFaulty();
  ASSERT_OK(engine->Write("f", Bytes("abc")));
  std::vector<std::byte> buf(3);
  ASSERT_OK(engine->Read("f", 0, buf));
  EXPECT_EQ(0u, engine->injected_failures());
}

TEST(FaultyEngineTest, ForcedReadFailuresFireExactlyN) {
  auto engine = MakeFaulty();
  ASSERT_OK(engine->Write("f", Bytes("abc")));
  engine->FailNextReads(2);
  std::vector<std::byte> buf(3);
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, engine->Read("f", 0, buf));
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, engine->Read("f", 0, buf));
  ASSERT_OK(engine->Read("f", 0, buf));
  EXPECT_EQ(2u, engine->injected_failures());
}

TEST(FaultyEngineTest, ForcedWriteFailures) {
  auto engine = MakeFaulty();
  engine->FailNextWrites(1);
  EXPECT_STATUS_CODE(StatusCode::kUnavailable,
                     engine->Write("f", Bytes("abc")));
  ASSERT_OK(engine->Write("f", Bytes("abc")));
}

TEST(FaultyEngineTest, ProbabilisticFailuresApproximateRate) {
  FaultyEngine::FaultSpec spec;
  spec.read_failure_rate = 0.3;
  spec.seed = 99;
  auto engine = MakeFaulty(spec);
  ASSERT_OK(engine->Write("f", Bytes("abc")));

  int failures = 0;
  std::vector<std::byte> buf(3);
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    if (!engine->Read("f", 0, buf).ok()) ++failures;
  }
  EXPECT_NEAR(0.3, static_cast<double>(failures) / kTrials, 0.05);
}

TEST(FaultyEngineTest, MetadataOpsUnaffectedByReadFaults) {
  auto engine = MakeFaulty();
  ASSERT_OK(engine->Write("f", Bytes("abc")));
  engine->FailNextReads(5);
  EXPECT_EQ(3u, engine->FileSize("f").value());
  EXPECT_TRUE(engine->Exists("f").value());
}

TEST(FaultyEngineTest, ForcedMetadataFailuresHitWholeStatSurface) {
  auto engine = MakeFaulty();
  ASSERT_OK(engine->Write("d/f", Bytes("abc")));
  engine->FailNextMetadataOps(3);
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, engine->FileSize("d/f"));
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, engine->Exists("d/f"));
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, engine->ListFiles("d"));
  EXPECT_EQ(3u, engine->injected_failures());
  // Data ops never shared the forced-metadata budget.
  std::vector<std::byte> buf(3);
  ASSERT_OK(engine->Read("d/f", 0, buf));
  EXPECT_EQ(1u, engine->ListFiles("d").value().size());
}

TEST(FaultyEngineTest, CorruptionFlipsExactlyOneByteAndCounts) {
  auto engine = MakeFaulty();
  ASSERT_OK(engine->Write("f", Bytes("hello world")));
  engine->CorruptNextReads(1);

  std::vector<std::byte> corrupt(11);
  ASSERT_OK(engine->Read("f", 0, corrupt));
  std::vector<std::byte> clean(11);
  ASSERT_OK(engine->Read("f", 0, clean));

  int diffs = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean[i] != corrupt[i]) ++diffs;
  }
  EXPECT_EQ(1, diffs);
  EXPECT_EQ(1u, engine->injected_corruptions());
  // Corruption is silent: the op succeeded, so no failure was counted.
  EXPECT_EQ(0u, engine->injected_failures());
}

TEST(FaultyEngineTest, OutageWindowFailsEverythingUntilHealed) {
  auto engine = MakeFaulty();
  ASSERT_OK(engine->Write("f", Bytes("abc")));
  engine->FailUntilHealed();
  EXPECT_TRUE(engine->in_outage());

  std::vector<std::byte> buf(3);
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, engine->Read("f", 0, buf));
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, engine->Write("g", Bytes("x")));
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, engine->FileSize("f"));
  EXPECT_EQ(3u, engine->injected_failures());

  engine->Heal();
  EXPECT_FALSE(engine->in_outage());
  ASSERT_OK(engine->Read("f", 0, buf));
}

TEST(FaultyEngineTest, TimedOutageExpiresOnItsOwn) {
  auto engine = MakeFaulty();
  ASSERT_OK(engine->Write("f", Bytes("abc")));
  engine->FailFor(Millis(5));
  EXPECT_TRUE(engine->in_outage());
  std::vector<std::byte> buf(3);
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, engine->Read("f", 0, buf));

  PreciseSleep(Millis(8));
  EXPECT_FALSE(engine->in_outage());
  ASSERT_OK(engine->Read("f", 0, buf));
}

TEST(FaultyEngineTest, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    FaultyEngine::FaultSpec spec;
    spec.read_failure_rate = 0.5;
    spec.seed = seed;
    auto engine = MakeFaulty(spec);
    engine->Write("f", Bytes("abc")).ok();
    std::vector<std::byte> buf(3);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += engine->Read("f", 0, buf).ok() ? 'O' : 'X';
    }
    return pattern;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace monarch::storage
