#include "storage/memory_engine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "../test_support.h"

namespace monarch::storage {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

TEST(MemoryEngineTest, WriteReadRoundTrips) {
  MemoryEngine engine;
  ASSERT_OK(engine.Write("f", Bytes("payload")));
  std::vector<std::byte> buf(7);
  auto read = engine.Read("f", 0, buf);
  ASSERT_OK(read);
  EXPECT_EQ(7u, read.value());
  EXPECT_EQ("payload", Text(buf));
}

TEST(MemoryEngineTest, OffsetAndEofSemanticsMatchPosix) {
  MemoryEngine engine;
  ASSERT_OK(engine.Write("f", Bytes("0123456789")));
  std::vector<std::byte> buf(4);
  EXPECT_EQ(4u, engine.Read("f", 2, buf).value());
  EXPECT_EQ("2345", Text(buf));
  EXPECT_EQ(2u, engine.Read("f", 8, buf).value());  // short read
  EXPECT_EQ(0u, engine.Read("f", 50, buf).value()); // past EOF
}

TEST(MemoryEngineTest, MissingFileErrors) {
  MemoryEngine engine;
  std::vector<std::byte> buf(1);
  EXPECT_STATUS_CODE(StatusCode::kNotFound, engine.Read("x", 0, buf));
  EXPECT_STATUS_CODE(StatusCode::kNotFound, engine.FileSize("x"));
  EXPECT_STATUS_CODE(StatusCode::kNotFound, engine.Delete("x"));
  EXPECT_FALSE(engine.Exists("x").value());
}

TEST(MemoryEngineTest, DeleteAndTotalBytes) {
  MemoryEngine engine;
  ASSERT_OK(engine.Write("a", Bytes("1234")));
  ASSERT_OK(engine.Write("b", Bytes("56")));
  EXPECT_EQ(6u, engine.TotalBytes());
  ASSERT_OK(engine.Delete("a"));
  EXPECT_EQ(2u, engine.TotalBytes());
}

TEST(MemoryEngineTest, ListFilesByPrefix) {
  MemoryEngine engine;
  ASSERT_OK(engine.Write("data/a", Bytes("1")));
  ASSERT_OK(engine.Write("data/b", Bytes("22")));
  ASSERT_OK(engine.Write("other/c", Bytes("333")));

  auto listing = engine.ListFiles("data");
  ASSERT_OK(listing);
  ASSERT_EQ(2u, listing.value().size());
  EXPECT_EQ("data/a", listing.value()[0].path);
  EXPECT_EQ("data/b", listing.value()[1].path);

  auto all = engine.ListFiles("");
  ASSERT_OK(all);
  EXPECT_EQ(3u, all.value().size());
}

TEST(MemoryEngineTest, OverwriteReplacesContent) {
  MemoryEngine engine;
  ASSERT_OK(engine.Write("f", Bytes("oldvalue")));
  ASSERT_OK(engine.Write("f", Bytes("new")));
  EXPECT_EQ(3u, engine.FileSize("f").value());
}

TEST(MemoryEngineTest, ConcurrentMixedOpsAreSafe) {
  MemoryEngine engine;
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(engine.Write("f" + std::to_string(i), Bytes("contents")));
  }
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&engine, &ok, t] {
      std::vector<std::byte> buf(8);
      for (int i = 0; i < 500; ++i) {
        const std::string path = "f" + std::to_string((t * 13 + i) % 50);
        if (i % 10 == 0) {
          if (!engine.Write(path, monarch::testing::Bytes("contents")).ok()) {
            ok.store(false);
          }
        } else if (!engine.Read(path, 0, buf).ok()) {
          ok.store(false);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace monarch::storage
