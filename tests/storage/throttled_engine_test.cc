#include "storage/throttled_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../test_support.h"
#include "storage/memory_engine.h"

namespace monarch::storage {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

DeviceProfile SlowProfile() {
  DeviceProfile p;
  p.name = "slow-test";
  p.read_bandwidth_bps = 1e6;  // 1 MB/s, so timing is observable
  p.write_bandwidth_bps = 1e6;
  p.read_latency = Millis(2);
  p.write_latency = Millis(2);
  p.metadata_latency = Millis(1);
  return p;
}

std::shared_ptr<ThrottledEngine> MakeThrottled() {
  return std::make_shared<ThrottledEngine>(
      std::make_shared<MemoryEngine>("inner"),
      std::make_shared<DeviceModel>(SlowProfile()));
}

TEST(ThrottledEngineTest, BytesPassThroughUnchanged) {
  auto engine = MakeThrottled();
  ASSERT_OK(engine->Write("f", Bytes("the exact payload")));
  std::vector<std::byte> buf(17);
  auto read = engine->Read("f", 0, buf);
  ASSERT_OK(read);
  EXPECT_EQ("the exact payload", Text(buf));
}

TEST(ThrottledEngineTest, SemanticsMatchInner) {
  auto engine = MakeThrottled();
  std::vector<std::byte> buf(4);
  EXPECT_STATUS_CODE(StatusCode::kNotFound, engine->Read("absent", 0, buf));
  ASSERT_OK(engine->Write("f", Bytes("0123456789")));
  EXPECT_EQ(10u, engine->FileSize("f").value());
  EXPECT_TRUE(engine->Exists("f").value());
  EXPECT_EQ(4u, engine->Read("f", 6, buf).value());
  EXPECT_EQ(0u, engine->Read("f", 99, buf).value());
  ASSERT_OK(engine->Delete("f"));
  EXPECT_FALSE(engine->Exists("f").value());
}

TEST(ThrottledEngineTest, ReadIsSlowedByDeviceModel) {
  auto engine = MakeThrottled();
  ASSERT_OK(engine->Write("f", std::vector<std::byte>(200 * 1024)));
  // Drain the burst so the timed read pays the modelled cost.
  std::vector<std::byte> big(200 * 1024);
  ASSERT_OK(engine->Read("f", 0, big));

  const Stopwatch timer;
  std::vector<std::byte> buf(100 * 1024);
  ASSERT_OK(engine->Read("f", 0, buf));
  // 100 KiB at 1 MB/s ~ 100 ms (plus 2 ms latency).
  EXPECT_GT(timer.ElapsedSeconds(), 0.05);
}

TEST(ThrottledEngineTest, FailedReadNotCharged) {
  auto engine = MakeThrottled();
  const Stopwatch timer;
  std::vector<std::byte> buf(1024 * 1024);
  EXPECT_FALSE(engine->Read("absent", 0, buf).ok());
  // No 1-second transfer charge for a failed read.
  EXPECT_LT(timer.ElapsedSeconds(), 0.05);
}

TEST(ThrottledEngineTest, StatsAttributedToWrapper) {
  auto engine = MakeThrottled();
  ASSERT_OK(engine->Write("f", Bytes("abc")));
  std::vector<std::byte> buf(3);
  ASSERT_OK(engine->Read("f", 0, buf));
  ASSERT_OK(engine->FileSize("f"));
  const auto snap = engine->Stats().Snapshot();
  EXPECT_EQ(1u, snap.read_ops);
  EXPECT_EQ(1u, snap.write_ops);
  EXPECT_EQ(1u, snap.metadata_ops);
  EXPECT_EQ(3u, snap.bytes_read);
}

TEST(ThrottledEngineTest, ListFilesChargesPerEntryMetadata) {
  auto engine = MakeThrottled();
  ASSERT_OK(engine->Write("d/a", Bytes("1")));
  ASSERT_OK(engine->Write("d/b", Bytes("2")));
  const auto before = engine->Stats().Snapshot();
  ASSERT_OK(engine->ListFiles("d"));
  const auto after = engine->Stats().Snapshot();
  // One per entry plus one for the directory itself.
  EXPECT_EQ(3u, after.metadata_ops - before.metadata_ops);
}

TEST(ThrottledEngineTest, NameCombinesInnerAndDevice) {
  auto engine = MakeThrottled();
  EXPECT_EQ("inner@slow-test", engine->Name());
}

}  // namespace
}  // namespace monarch::storage
