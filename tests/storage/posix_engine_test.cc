#include "storage/posix_engine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "../test_support.h"

namespace monarch::storage {
namespace {

using monarch::testing::Bytes;
using monarch::testing::TempDir;
using monarch::testing::Text;

class PosixEngineTest : public ::testing::Test {
 protected:
  PosixEngineTest() : dir_("posix"), engine_(dir_.path()) {}

  TempDir dir_;
  PosixEngine engine_;
};

TEST_F(PosixEngineTest, WriteThenReadRoundTrips) {
  ASSERT_OK(engine_.Write("a/b/file.bin", Bytes("hello world")));
  std::vector<std::byte> buf(11);
  auto read = engine_.Read("a/b/file.bin", 0, buf);
  ASSERT_OK(read);
  EXPECT_EQ(11u, read.value());
  EXPECT_EQ("hello world", Text(buf));
}

TEST_F(PosixEngineTest, ReadAtOffset) {
  ASSERT_OK(engine_.Write("f", Bytes("0123456789")));
  std::vector<std::byte> buf(4);
  auto read = engine_.Read("f", 3, buf);
  ASSERT_OK(read);
  EXPECT_EQ(4u, read.value());
  EXPECT_EQ("3456", Text(buf));
}

TEST_F(PosixEngineTest, ShortReadAtEof) {
  ASSERT_OK(engine_.Write("f", Bytes("abc")));
  std::vector<std::byte> buf(10);
  auto read = engine_.Read("f", 0, buf);
  ASSERT_OK(read);
  EXPECT_EQ(3u, read.value());
}

TEST_F(PosixEngineTest, ReadPastEofYieldsZeroNotError) {
  ASSERT_OK(engine_.Write("f", Bytes("abc")));
  std::vector<std::byte> buf(4);
  auto read = engine_.Read("f", 100, buf);
  ASSERT_OK(read);
  EXPECT_EQ(0u, read.value());
}

TEST_F(PosixEngineTest, ReadMissingFileIsNotFound) {
  std::vector<std::byte> buf(4);
  EXPECT_STATUS_CODE(StatusCode::kNotFound, engine_.Read("nope", 0, buf));
}

TEST_F(PosixEngineTest, OverwriteTruncates) {
  ASSERT_OK(engine_.Write("f", Bytes("long-original-content")));
  ASSERT_OK(engine_.Write("f", Bytes("tiny")));
  EXPECT_EQ(4u, engine_.FileSize("f").value());
}

TEST_F(PosixEngineTest, EmptyFileSupported) {
  ASSERT_OK(engine_.Write("empty", {}));
  EXPECT_EQ(0u, engine_.FileSize("empty").value());
  std::vector<std::byte> buf(1);
  EXPECT_EQ(0u, engine_.Read("empty", 0, buf).value());
}

TEST_F(PosixEngineTest, FileSizeAndExists) {
  ASSERT_OK(engine_.Write("f", Bytes("12345")));
  EXPECT_EQ(5u, engine_.FileSize("f").value());
  EXPECT_TRUE(engine_.Exists("f").value());
  EXPECT_FALSE(engine_.Exists("g").value());
  EXPECT_STATUS_CODE(StatusCode::kNotFound, engine_.FileSize("g"));
}

TEST_F(PosixEngineTest, DeleteRemovesFile) {
  ASSERT_OK(engine_.Write("f", Bytes("x")));
  ASSERT_OK(engine_.Delete("f"));
  EXPECT_FALSE(engine_.Exists("f").value());
  EXPECT_STATUS_CODE(StatusCode::kNotFound, engine_.Delete("f"));
}

TEST_F(PosixEngineTest, ListFilesRecursiveSorted) {
  ASSERT_OK(engine_.Write("d/b.bin", Bytes("22")));
  ASSERT_OK(engine_.Write("d/a.bin", Bytes("1")));
  ASSERT_OK(engine_.Write("d/sub/c.bin", Bytes("333")));
  auto listing = engine_.ListFiles("d");
  ASSERT_OK(listing);
  ASSERT_EQ(3u, listing.value().size());
  EXPECT_EQ("d/a.bin", listing.value()[0].path);
  EXPECT_EQ(1u, listing.value()[0].size);
  EXPECT_EQ("d/b.bin", listing.value()[1].path);
  EXPECT_EQ("d/sub/c.bin", listing.value()[2].path);
}

TEST_F(PosixEngineTest, ListMissingDirIsNotFound) {
  EXPECT_STATUS_CODE(StatusCode::kNotFound, engine_.ListFiles("absent"));
}

TEST_F(PosixEngineTest, StatsCountOps) {
  ASSERT_OK(engine_.Write("f", Bytes("abcd")));
  std::vector<std::byte> buf(4);
  ASSERT_OK(engine_.Read("f", 0, buf));
  ASSERT_OK(engine_.FileSize("f"));
  const auto snap = engine_.Stats().Snapshot();
  EXPECT_EQ(1u, snap.read_ops);
  EXPECT_EQ(1u, snap.write_ops);
  EXPECT_GE(snap.metadata_ops, 1u);
  EXPECT_EQ(4u, snap.bytes_read);
  EXPECT_EQ(4u, snap.bytes_written);
}

TEST_F(PosixEngineTest, ConcurrentReadersSeeConsistentBytes) {
  std::string content;
  for (int i = 0; i < 1000; ++i) content += static_cast<char>('a' + i % 26);
  ASSERT_OK(engine_.Write("big", Bytes(content)));

  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> buf(100);
      for (int i = 0; i < 50; ++i) {
        const std::uint64_t off = static_cast<std::uint64_t>((t * 50 + i) % 900);
        auto read = engine_.Read("big", off, buf);
        if (!read.ok() || read.value() != 100 ||
            Text(buf) != content.substr(off, 100)) {
          ok.store(false);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace monarch::storage
