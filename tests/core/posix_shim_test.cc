#include "core/posix_shim.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "../test_support.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

class PosixShimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pfs_ = std::make_shared<storage::MemoryEngine>("pfs");
    local_ = std::make_shared<storage::MemoryEngine>("local");
    ASSERT_OK(pfs_->Write("data/f1", Bytes("0123456789")));
    ASSERT_OK(pfs_->Write("data/f2", Bytes("abcdef")));

    MonarchConfig config;
    config.cache_tiers.push_back(TierSpec{"local", local_, 1000});
    config.pfs = TierSpec{"pfs", pfs_, 0};
    config.dataset_dir = "data";
    auto monarch = Monarch::Create(std::move(config));
    ASSERT_OK(monarch);
    monarch_ = std::move(monarch).value();
    shim_ = std::make_unique<PosixShim>(*monarch_);
  }

  std::shared_ptr<storage::MemoryEngine> pfs_;
  std::shared_ptr<storage::MemoryEngine> local_;
  std::unique_ptr<Monarch> monarch_;
  std::unique_ptr<PosixShim> shim_;
};

TEST_F(PosixShimTest, OpenPreadCloseLifecycle) {
  auto fd = shim_->Open("data/f1");
  ASSERT_OK(fd);
  EXPECT_GE(fd.value(), 3) << "descriptors start past stdio";
  EXPECT_EQ(1u, shim_->open_count());

  std::vector<std::byte> buf(4);
  auto read = shim_->Pread(fd.value(), 2, buf);
  ASSERT_OK(read);
  EXPECT_EQ("2345", Text(buf));

  EXPECT_EQ(10u, shim_->Fstat(fd.value()).value());
  ASSERT_OK(shim_->Close(fd.value()));
  EXPECT_EQ(0u, shim_->open_count());
}

TEST_F(PosixShimTest, OpenMissingFileIsNotFound) {
  EXPECT_STATUS_CODE(StatusCode::kNotFound, shim_->Open("data/ghost"));
  EXPECT_EQ(0u, shim_->open_count());
}

TEST_F(PosixShimTest, PreadOnBadFdFails) {
  std::vector<std::byte> buf(4);
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     shim_->Pread(99, 0, buf));
}

TEST_F(PosixShimTest, DoubleCloseFails) {
  auto fd = shim_->Open("data/f1");
  ASSERT_OK(fd);
  ASSERT_OK(shim_->Close(fd.value()));
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     shim_->Close(fd.value()));
}

TEST_F(PosixShimTest, UseAfterCloseFails) {
  auto fd = shim_->Open("data/f1");
  ASSERT_OK(fd);
  ASSERT_OK(shim_->Close(fd.value()));
  std::vector<std::byte> buf(4);
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     shim_->Pread(fd.value(), 0, buf));
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     shim_->Fstat(fd.value()));
}

TEST_F(PosixShimTest, IndependentFdsForSameFile) {
  auto fd1 = shim_->Open("data/f1");
  auto fd2 = shim_->Open("data/f1");
  ASSERT_OK(fd1);
  ASSERT_OK(fd2);
  EXPECT_NE(fd1.value(), fd2.value());
  ASSERT_OK(shim_->Close(fd1.value()));
  // fd2 keeps working after fd1 closes.
  std::vector<std::byte> buf(3);
  EXPECT_OK(shim_->Pread(fd2.value(), 0, buf));
}

TEST_F(PosixShimTest, ReadsGoThroughMonarchPlacement) {
  auto fd = shim_->Open("data/f2");
  ASSERT_OK(fd);
  std::vector<std::byte> buf(6);
  ASSERT_OK(shim_->Pread(fd.value(), 0, buf));
  monarch_->DrainPlacements();
  // The shim read triggered MONARCH's staging, same as a direct read.
  EXPECT_EQ(1u, monarch_->Stats().placement.completed);
  EXPECT_TRUE(local_->Exists("data/f2").value());
}

/// Write-path stub (ISSUE 5): records what Close commits.
class StubSink final : public CheckpointSink {
 public:
  Status Save(const std::string& name,
              std::span<const std::byte> data) override {
    names.push_back(name);
    payloads.emplace_back(data.begin(), data.end());
    return next_save;
  }
  Result<std::vector<std::byte>> Restore(const std::string&) override {
    return NotFoundError("stub");
  }
  Status Flush() override { return Status::Ok(); }

  std::vector<std::string> names;
  std::vector<std::vector<std::byte>> payloads;
  Status next_save = Status::Ok();
};

TEST_F(PosixShimTest, WriteDescriptorCommitsThroughSinkOnClose) {
  StubSink sink;
  PosixShim shim(*monarch_, &sink);
  auto fd = shim.OpenForWrite("ckpt/model");
  ASSERT_OK(fd);
  EXPECT_EQ(1u, shim.open_count());

  // The framework saver streams out of order and leaves a sparse gap;
  // the shim must assemble pwrite(2) semantics: gap reads back as zeros.
  ASSERT_OK(shim.Pwrite(fd.value(), 6, Bytes("world")));
  ASSERT_OK(shim.Pwrite(fd.value(), 0, Bytes("hello")));
  EXPECT_EQ(11u, shim.Fstat(fd.value()).value());

  EXPECT_TRUE(sink.names.empty()) << "nothing commits before Close";
  ASSERT_OK(shim.Close(fd.value()));
  EXPECT_EQ(0u, shim.open_count());
  ASSERT_EQ(1u, sink.names.size());
  EXPECT_EQ("ckpt/model", sink.names[0]);
  EXPECT_EQ(std::string("hello\0world", 11), Text(sink.payloads[0]));
}

TEST_F(PosixShimTest, OpenForWriteWithoutSinkIsFailedPrecondition) {
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     shim_->OpenForWrite("ckpt/model"));
}

TEST_F(PosixShimTest, CloseSurfacesSinkErrorButReleasesDescriptor) {
  StubSink sink;
  sink.next_save = UnavailableError("pfs down");
  PosixShim shim(*monarch_, &sink);
  auto fd = shim.OpenForWrite("ckpt/model");
  ASSERT_OK(fd);
  ASSERT_OK(shim.Pwrite(fd.value(), 0, Bytes("x")));
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, shim.Close(fd.value()));
  // The descriptor is gone either way — a retry needs a fresh open.
  EXPECT_EQ(0u, shim.open_count());
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     shim.Close(fd.value()));
}

TEST_F(PosixShimTest, PwriteOnReadDescriptorFails) {
  StubSink sink;
  PosixShim shim(*monarch_, &sink);
  auto fd = shim.Open("data/f1");
  ASSERT_OK(fd);
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     shim.Pwrite(fd.value(), 0, Bytes("x")));
  // And reads don't see write descriptors.
  auto wfd = shim.OpenForWrite("ckpt/model");
  ASSERT_OK(wfd);
  std::vector<std::byte> buf(4);
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     shim.Pread(wfd.value(), 0, buf));
}

TEST_F(PosixShimTest, ConcurrentOpensGetUniqueFds) {
  std::vector<std::thread> threads;
  std::mutex mu;
  std::set<int> fds;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto fd = shim_->Open("data/f1");
        ASSERT_TRUE(fd.ok());
        std::lock_guard<std::mutex> lock(mu);
        fds.insert(fd.value());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(400u, fds.size());
  EXPECT_EQ(400u, shim_->open_count());
}

}  // namespace
}  // namespace monarch::core
