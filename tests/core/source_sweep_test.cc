// Parameterised sweep: the TFRecord reader streaming through MONARCH
// across (read-chunk size x local-quota ratio) combinations. Every cell
// must decode every record byte-exactly across two epochs, whatever mix
// of tiers ends up serving the chunks — the end-to-end contract the
// TensorFlow integration relies on.
#include <gtest/gtest.h>

#include <memory>

#include "../test_support.h"
#include "core/monarch.h"
#include "core/monarch_source.h"
#include "storage/memory_engine.h"
#include "tfrecord/reader.h"
#include "tfrecord/writer.h"
#include "util/rng.h"

namespace monarch::core {
namespace {

struct SweepCase {
  std::size_t chunk_bytes;   ///< reader buffer (0 = unbuffered)
  double quota_ratio;        ///< local quota / dataset bytes
};

std::string SweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  return "chunk" + std::to_string(info.param.chunk_bytes) + "_q" +
         std::to_string(static_cast<int>(info.param.quota_ratio * 100));
}

class SourceSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  static constexpr int kFiles = 6;
  static constexpr int kRecordsPerFile = 12;

  void SetUp() override {
    pfs_ = std::make_shared<storage::MemoryEngine>("pfs");
    local_ = std::make_shared<storage::MemoryEngine>("local");

    Xoshiro256 rng(13);
    std::uint64_t dataset_bytes = 0;
    for (int f = 0; f < kFiles; ++f) {
      tfrecord::TFRecordWriter writer;
      for (int r = 0; r < kRecordsPerFile; ++r) {
        // Jittered record sizes straddle every chunk boundary in the sweep.
        std::vector<std::byte> payload(64 + rng.NextBounded(3000));
        for (auto& b : payload) b = static_cast<std::byte>(rng() & 0xFF);
        expected_[f].push_back(payload);
        writer.Append(payload);
      }
      dataset_bytes += writer.byte_size();
      ASSERT_OK(writer.Flush(*pfs_, Path(f)));
    }

    MonarchConfig config;
    config.cache_tiers.push_back(TierSpec{
        "local", local_,
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   GetParam().quota_ratio *
                   static_cast<double>(dataset_bytes)))});
    config.pfs = TierSpec{"pfs", pfs_, 0};
    config.dataset_dir = "data";
    config.placement.num_threads = 3;
    auto monarch = Monarch::Create(std::move(config));
    ASSERT_OK(monarch);
    monarch_ = std::move(monarch).value();
  }

  static std::string Path(int f) {
    return "data/shard" + std::to_string(f) + ".tfrecord";
  }

  void VerifyEpoch() {
    for (int f = 0; f < kFiles; ++f) {
      MonarchSource source(*monarch_, Path(f));
      tfrecord::TFRecordReader reader(
          source, {.buffer_bytes = GetParam().chunk_bytes});
      for (int r = 0; r < kRecordsPerFile; ++r) {
        auto record = reader.ReadRecord();
        ASSERT_OK(record);
        ASSERT_EQ(expected_[f][static_cast<std::size_t>(r)], record.value())
            << "file " << f << " record " << r;
      }
      EXPECT_STATUS_CODE(StatusCode::kOutOfRange, reader.ReadRecord());
    }
  }

  std::shared_ptr<storage::MemoryEngine> pfs_;
  std::shared_ptr<storage::MemoryEngine> local_;
  std::unique_ptr<Monarch> monarch_;
  std::map<int, std::vector<std::vector<std::byte>>> expected_;
};

TEST_P(SourceSweepTest, TwoEpochsDecodeExactly) {
  VerifyEpoch();  // epoch 1: PFS-served, staging racing the reads
  monarch_->DrainPlacements();
  VerifyEpoch();  // epoch 2: mixed tiers per the quota ratio

  const auto stats = monarch_->Stats();
  // Placement terminated consistently.
  EXPECT_EQ(stats.placement.scheduled,
            stats.placement.completed + stats.placement.rejected_no_space +
                stats.placement.failed);
  if (GetParam().quota_ratio >= 1.5) {
    EXPECT_EQ(static_cast<std::uint64_t>(kFiles),
              stats.placement.completed);
  }
  // Quota invariant regardless of cell.
  EXPECT_LE(stats.levels[0].occupancy_bytes, stats.levels[0].quota_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    ChunkQuotaGrid, SourceSweepTest,
    ::testing::Values(SweepCase{0, 2.0},      // unbuffered, everything fits
                      SweepCase{0, 0.4},      // unbuffered, partial cache
                      SweepCase{64, 2.0},     // tiny chunks
                      SweepCase{64, 0.4},
                      SweepCase{1024, 1.5},
                      SweepCase{1024, 0.1},   // almost nothing fits
                      SweepCase{65536, 2.0},  // whole file per chunk
                      SweepCase{65536, 0.4}),
    SweepName);

}  // namespace
}  // namespace monarch::core
