#include "core/placement_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "../test_support.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

std::unique_ptr<StorageHierarchy> MakeHierarchy(
    std::vector<std::uint64_t> quotas) {
  std::vector<StorageDriverPtr> drivers;
  for (std::size_t i = 0; i < quotas.size(); ++i) {
    drivers.push_back(std::make_unique<StorageDriver>(
        "tier" + std::to_string(i),
        std::make_shared<storage::MemoryEngine>(), quotas[i],
        /*read_only=*/false));
  }
  drivers.push_back(std::make_unique<StorageDriver>(
      "pfs", std::make_shared<storage::MemoryEngine>(), 0,
      /*read_only=*/true));
  auto hierarchy = StorageHierarchy::Create(std::move(drivers));
  EXPECT_TRUE(hierarchy.ok());
  return std::move(hierarchy).value();
}

TEST(FirstFitPolicyTest, FillsLevelZeroFirst) {
  auto hierarchy = MakeHierarchy({100, 100});
  FirstFitPolicy policy;
  // Level 0 takes files until full.
  EXPECT_EQ(0, policy.PickLevel(*hierarchy, 60).value());
  EXPECT_EQ(0, policy.PickLevel(*hierarchy, 40).value());
  // Level 0 is exactly full: the next file spills to level 1.
  EXPECT_EQ(1, policy.PickLevel(*hierarchy, 10).value());
  EXPECT_EQ(60u, hierarchy->Level(1).occupancy_bytes() + 50);
}

TEST(FirstFitPolicyTest, ReservesQuotaAtomically) {
  auto hierarchy = MakeHierarchy({100});
  FirstFitPolicy policy;
  ASSERT_TRUE(policy.PickLevel(*hierarchy, 70).has_value());
  EXPECT_EQ(70u, hierarchy->Level(0).occupancy_bytes());
}

TEST(FirstFitPolicyTest, NulloptWhenNothingFits) {
  auto hierarchy = MakeHierarchy({50, 30});
  FirstFitPolicy policy;
  EXPECT_FALSE(policy.PickLevel(*hierarchy, 60).has_value());
  EXPECT_EQ(0u, hierarchy->Level(0).occupancy_bytes())
      << "a failed pick must not leave reservations behind";
  EXPECT_EQ(0u, hierarchy->Level(1).occupancy_bytes());
}

TEST(FirstFitPolicyTest, NeverPicksThePfsLevel) {
  auto hierarchy = MakeHierarchy({10});
  FirstFitPolicy policy;
  // File larger than every writable tier: must return nullopt rather than
  // "placing" on the unlimited PFS level.
  EXPECT_FALSE(policy.PickLevel(*hierarchy, 11).has_value());
}

TEST(FirstFitPolicyTest, SkipsFullUpperTier) {
  auto hierarchy = MakeHierarchy({100, 200});
  FirstFitPolicy policy;
  ASSERT_TRUE(hierarchy->Level(0).Reserve(95));
  EXPECT_EQ(1, policy.PickLevel(*hierarchy, 50).value());
  // Small files can still squeeze into level 0's remainder.
  EXPECT_EQ(0, policy.PickLevel(*hierarchy, 5).value());
}

TEST(RoundRobinPolicyTest, SpreadsAcrossWritableTiers) {
  auto hierarchy = MakeHierarchy({1000, 1000});
  RoundRobinPolicy policy;
  int level0 = 0;
  int level1 = 0;
  for (int i = 0; i < 10; ++i) {
    const auto level = policy.PickLevel(*hierarchy, 10);
    ASSERT_TRUE(level.has_value());
    (level.value() == 0 ? level0 : level1)++;
  }
  EXPECT_EQ(5, level0);
  EXPECT_EQ(5, level1);
}

TEST(RoundRobinPolicyTest, FallsThroughWhenPreferredFull) {
  auto hierarchy = MakeHierarchy({15, 1000});
  RoundRobinPolicy policy;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(policy.PickLevel(*hierarchy, 10).has_value());
  }
  // Level 0 holds at most one 10-byte file; everything else spilled.
  EXPECT_LE(hierarchy->Level(0).occupancy_bytes(), 15u);
  EXPECT_GE(hierarchy->Level(1).occupancy_bytes(), 70u);
}

TEST(PolicyFactoryTest, NamesAreStable) {
  EXPECT_EQ("first-fit", MakeFirstFitPolicy()->Name());
  EXPECT_EQ("round-robin", MakeRoundRobinPolicy()->Name());
}

}  // namespace
}  // namespace monarch::core
