#include "core/monarch.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "../test_support.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

class MonarchTest : public ::testing::Test {
 protected:
  /// Build a 2-level instance over memory engines. `files` are written to
  /// the PFS under "data/" before Create() runs.
  Result<std::unique_ptr<Monarch>> Build(
      std::uint64_t local_quota,
      const std::vector<std::pair<std::string, std::string>>& files,
      PlacementOptions placement = {}) {
    pfs_ = std::make_shared<storage::MemoryEngine>("pfs");
    local_ = std::make_shared<storage::MemoryEngine>("local");
    for (const auto& [name, data] : files) {
      EXPECT_TRUE(pfs_->Write("data/" + name, Bytes(data)).ok());
    }
    MonarchConfig config;
    config.cache_tiers.push_back(TierSpec{"local", local_, local_quota});
    config.pfs = TierSpec{"pfs", pfs_, 0};
    config.dataset_dir = "data";
    placement.num_threads = 2;
    config.placement = placement;
    return Monarch::Create(std::move(config));
  }

  std::string ReadAll(Monarch& monarch, const std::string& name,
                      std::size_t size) {
    std::vector<std::byte> buf(size);
    auto read = monarch.Read(name, 0, buf);
    EXPECT_TRUE(read.ok()) << read.status();
    buf.resize(read.value_or(0));
    return Text(buf);
  }

  std::shared_ptr<storage::MemoryEngine> pfs_;
  std::shared_ptr<storage::MemoryEngine> local_;
};

TEST_F(MonarchTest, CreateIndexesDataset) {
  auto monarch = Build(1000, {{"f1", "aaa"}, {"f2", "bbbb"}});
  ASSERT_OK(monarch);
  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(2u, stats.files_indexed);
  EXPECT_EQ(7u, stats.dataset_bytes);
  EXPECT_GE(stats.metadata_init_seconds, 0.0);
  ASSERT_EQ(2u, stats.levels.size());
  EXPECT_EQ("local", stats.levels[0].tier_name);
  EXPECT_EQ("pfs", stats.levels[1].tier_name);
}

TEST_F(MonarchTest, CreateRejectsBadConfigs) {
  MonarchConfig no_pfs;
  no_pfs.cache_tiers.push_back(
      TierSpec{"l", std::make_shared<storage::MemoryEngine>(), 10});
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     Monarch::Create(std::move(no_pfs)));

  MonarchConfig no_tiers;
  no_tiers.pfs = TierSpec{"p", std::make_shared<storage::MemoryEngine>(), 0};
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     Monarch::Create(std::move(no_tiers)));

  MonarchConfig zero_quota;
  zero_quota.cache_tiers.push_back(
      TierSpec{"l", std::make_shared<storage::MemoryEngine>(), 0});
  zero_quota.pfs = TierSpec{"p", std::make_shared<storage::MemoryEngine>(), 0};
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     Monarch::Create(std::move(zero_quota)));
}

TEST_F(MonarchTest, FirstReadServedFromPfs) {
  auto monarch = Build(1000, {{"f1", "payload-one"}});
  ASSERT_OK(monarch);
  EXPECT_EQ("payload-one", ReadAll(**monarch, "data/f1", 11));
  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(1u, stats.levels[1].reads) << "first read hits the PFS";
  EXPECT_EQ(0u, stats.levels[0].reads);
}

TEST_F(MonarchTest, SecondReadServedFromLocalAfterPlacement) {
  auto monarch = Build(1000, {{"f1", "payload-one"}});
  ASSERT_OK(monarch);
  ReadAll(**monarch, "data/f1", 11);
  monarch.value()->DrainPlacements();

  EXPECT_EQ("payload-one", ReadAll(**monarch, "data/f1", 11));
  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(1u, stats.levels[1].reads);
  EXPECT_EQ(1u, stats.levels[0].reads) << "steady state serves from local";
  EXPECT_EQ(1u, stats.placement.completed);
  EXPECT_EQ(11u, stats.levels[0].occupancy_bytes);
}

TEST_F(MonarchTest, PartialReadTriggersFullFileFetch) {
  auto monarch = Build(1000, {{"f1", "0123456789ABCDEF"}});
  ASSERT_OK(monarch);

  std::vector<std::byte> buf(4);
  auto read = monarch.value()->Read("data/f1", 4, buf);
  ASSERT_OK(read);
  EXPECT_EQ("4567", Text(buf));

  monarch.value()->DrainPlacements();
  // The WHOLE file (16 bytes), not just the 4 requested, was staged.
  std::vector<std::byte> staged(16);
  auto local_read = local_->Read("data/f1", 0, staged);
  ASSERT_OK(local_read);
  EXPECT_EQ(16u, local_read.value());
  EXPECT_EQ("0123456789ABCDEF", Text(staged));
  EXPECT_EQ(16u, monarch.value()->Stats().placement.bytes_staged);
}

TEST_F(MonarchTest, PartialReadNotStagedWhenOptimisationDisabled) {
  PlacementOptions placement;
  placement.fetch_full_file_on_partial_read = false;
  auto monarch = Build(1000, {{"f1", "0123456789ABCDEF"}}, placement);
  ASSERT_OK(monarch);

  std::vector<std::byte> buf(4);
  ASSERT_OK(monarch.value()->Read("data/f1", 4, buf));
  monarch.value()->DrainPlacements();
  EXPECT_EQ(0u, monarch.value()->Stats().placement.scheduled);

  // A full read still stages.
  std::vector<std::byte> full(16);
  ASSERT_OK(monarch.value()->Read("data/f1", 0, full));
  monarch.value()->DrainPlacements();
  EXPECT_EQ(1u, monarch.value()->Stats().placement.completed);
}

TEST_F(MonarchTest, FullReadPassesContentWithoutSecondPfsRead) {
  auto monarch = Build(1000, {{"f1", "whole-file-content"}});
  ASSERT_OK(monarch);

  ReadAll(**monarch, "data/f1", 18);
  monarch.value()->DrainPlacements();

  // Exactly one PFS data read: the framework's own. The placement reused
  // the content instead of re-reading (paper §III-B: event ③ skipped).
  EXPECT_EQ(1u, pfs_->Stats().Snapshot().read_ops);
  EXPECT_EQ(1u, monarch.value()->Stats().placement.completed);
}

TEST_F(MonarchTest, BytesIdenticalRegardlessOfServingTier) {
  const std::string content = "the-exact-bytes-must-never-change";
  auto monarch = Build(1000, {{"f1", content}});
  ASSERT_OK(monarch);
  EXPECT_EQ(content, ReadAll(**monarch, "data/f1", content.size()));
  monarch.value()->DrainPlacements();
  EXPECT_EQ(content, ReadAll(**monarch, "data/f1", content.size()));
  // Offset reads agree too.
  std::vector<std::byte> buf(9);
  ASSERT_OK(monarch.value()->Read("data/f1", 4, buf));
  EXPECT_EQ(content.substr(4, 9), Text(buf));
}

TEST_F(MonarchTest, OversizedFileStaysOnPfs) {
  auto monarch = Build(8, {{"big", "way-too-big-for-the-tier"}});
  ASSERT_OK(monarch);
  ReadAll(**monarch, "data/big", 24);
  monarch.value()->DrainPlacements();

  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(1u, stats.placement.rejected_no_space);
  EXPECT_EQ(0u, stats.levels[0].occupancy_bytes);
  // Subsequent reads keep hitting the PFS but do NOT re-schedule
  // placement (state is kUnplaceable).
  ReadAll(**monarch, "data/big", 24);
  monarch.value()->DrainPlacements();
  EXPECT_EQ(1u, monarch.value()->Stats().placement.scheduled);
}

TEST_F(MonarchTest, PartialDatasetScenario) {
  // 3 files of 10 bytes, quota 25: two place, one stays on the PFS —
  // the paper's 200 GiB case in miniature.
  auto monarch = Build(25, {{"f1", "0123456789"},
                            {"f2", "0123456789"},
                            {"f3", "0123456789"}});
  ASSERT_OK(monarch);
  for (const char* name : {"data/f1", "data/f2", "data/f3"}) {
    ReadAll(**monarch, name, 10);
    monarch.value()->DrainPlacements();
  }
  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(2u, stats.placement.completed);
  EXPECT_EQ(1u, stats.placement.rejected_no_space);
  EXPECT_EQ(20u, stats.levels[0].occupancy_bytes);

  // Epoch 2: two reads local, one from the PFS.
  const auto before = monarch.value()->Stats();
  for (const char* name : {"data/f1", "data/f2", "data/f3"}) {
    ReadAll(**monarch, name, 10);
  }
  const auto after = monarch.value()->Stats();
  EXPECT_EQ(2u, after.levels[0].reads - before.levels[0].reads);
  EXPECT_EQ(1u, after.levels[1].reads - before.levels[1].reads);
}

TEST_F(MonarchTest, UnknownFileLazilyDiscovered) {
  auto monarch = Build(1000, {{"f1", "aaa"}});
  ASSERT_OK(monarch);
  // File written to the PFS *after* startup indexing.
  ASSERT_OK(pfs_->Write("data/late", Bytes("late-file")));
  EXPECT_EQ("late-file", ReadAll(**monarch, "data/late", 9));
  EXPECT_EQ(2u, monarch.value()->Stats().files_indexed);
}

TEST_F(MonarchTest, MissingFileIsNotFound) {
  auto monarch = Build(1000, {{"f1", "aaa"}});
  ASSERT_OK(monarch);
  std::vector<std::byte> buf(4);
  EXPECT_STATUS_CODE(StatusCode::kNotFound,
                     monarch.value()->Read("data/ghost", 0, buf));
}

TEST_F(MonarchTest, FileSizeFromNamespaceWithoutBackendTrip) {
  auto monarch = Build(1000, {{"f1", "12345"}});
  ASSERT_OK(monarch);
  const auto before = pfs_->Stats().Snapshot();
  EXPECT_EQ(5u, monarch.value()->FileSize("data/f1").value());
  EXPECT_EQ(before.metadata_ops, pfs_->Stats().Snapshot().metadata_ops);
}

TEST_F(MonarchTest, StopPlacementFreezesStaging) {
  auto monarch = Build(1000, {{"f1", "aaa"}, {"f2", "bbb"}});
  ASSERT_OK(monarch);
  ReadAll(**monarch, "data/f1", 3);
  monarch.value()->DrainPlacements();
  monarch.value()->StopPlacement();

  ReadAll(**monarch, "data/f2", 3);
  monarch.value()->DrainPlacements();
  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(1u, stats.placement.completed);
  EXPECT_EQ(PlacementState::kPfsOnly,
            monarch.value()->metadata().Lookup("data/f2")->state.load());
}

TEST_F(MonarchTest, ShutdownIsIdempotentAndDrains) {
  auto monarch = Build(1000, {{"f1", "aaa"}});
  ASSERT_OK(monarch);
  ReadAll(**monarch, "data/f1", 3);
  monarch.value()->Shutdown();
  monarch.value()->Shutdown();
  SUCCEED();
}

TEST_F(MonarchTest, ConcurrentReadersOfSameFileStageOnce) {
  const std::string content(1000, 'z');
  auto monarch = Build(10000, {{"hot", content}});
  ASSERT_OK(monarch);

  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      std::vector<std::byte> buf(100);
      for (int i = 0; i < 20; ++i) {
        auto read =
            monarch.value()->Read("data/hot", static_cast<std::uint64_t>(i * 7), buf);
        if (!read.ok()) ok.store(false);
      }
    });
  }
  for (auto& t : threads) t.join();
  monarch.value()->DrainPlacements();

  EXPECT_TRUE(ok.load());
  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(1u, stats.placement.scheduled)
      << "the FileInfo CAS must dedupe concurrent first reads";
  EXPECT_EQ(1u, stats.placement.completed);
  EXPECT_EQ(1000u, stats.levels[0].occupancy_bytes);
}

TEST_F(MonarchTest, ConcurrentReadsAcrossManyFilesAllPlace) {
  std::vector<std::pair<std::string, std::string>> files;
  for (int i = 0; i < 40; ++i) {
    files.emplace_back("f" + std::to_string(i), std::string(50, 'a'));
  }
  auto monarch = Build(10000, files);
  ASSERT_OK(monarch);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> buf(50);
      for (int i = t; i < 40; i += 4) {
        ASSERT_OK(
            monarch.value()->Read("data/f" + std::to_string(i), 0, buf));
      }
    });
  }
  for (auto& t : threads) t.join();
  monarch.value()->DrainPlacements();

  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(40u, stats.placement.completed);
  EXPECT_EQ(40u * 50, stats.levels[0].occupancy_bytes);
}

TEST_F(MonarchTest, EmptyFileHandled) {
  auto monarch = Build(1000, {{"empty", ""}});
  ASSERT_OK(monarch);
  std::vector<std::byte> buf(4);
  auto read = monarch.value()->Read("data/empty", 0, buf);
  ASSERT_OK(read);
  EXPECT_EQ(0u, read.value());
  monarch.value()->DrainPlacements();
  // Zero-byte file counts as a full read at offset 0 and stages trivially.
  EXPECT_EQ(PlacementState::kPlaced,
            monarch.value()->metadata().Lookup("data/empty")->state.load());
}

TEST_F(MonarchTest, QuotaNeverExceededUnderConcurrentPlacement) {
  std::vector<std::pair<std::string, std::string>> files;
  for (int i = 0; i < 30; ++i) {
    files.emplace_back("f" + std::to_string(i), std::string(10, 'x'));
  }
  auto monarch = Build(105, files);  // room for 10 of 30 files
  ASSERT_OK(monarch);

  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> buf(10);
      for (int i = t; i < 30; i += 6) {
        ASSERT_OK(
            monarch.value()->Read("data/f" + std::to_string(i), 0, buf));
      }
    });
  }
  for (auto& t : threads) t.join();
  monarch.value()->DrainPlacements();

  const auto stats = monarch.value()->Stats();
  EXPECT_LE(stats.levels[0].occupancy_bytes, 105u);
  EXPECT_EQ(10u, stats.placement.completed);
  EXPECT_EQ(20u, stats.placement.rejected_no_space);
  EXPECT_EQ(100u, local_->TotalBytes())
      << "occupancy accounting must match actual stored bytes";
}

TEST_F(MonarchTest, FallsBackToPfsWhenTierCopyVanishes) {
  auto monarch = Build(1000, {{"f1", "resilient-bytes"}});
  ASSERT_OK(monarch);
  ReadAll(**monarch, "data/f1", 15);
  monarch.value()->DrainPlacements();
  ASSERT_EQ(0, monarch.value()->metadata().Lookup("data/f1")->level.load());

  // Simulate the eviction race: the tier copy disappears while the
  // namespace still points at level 0.
  ASSERT_OK(local_->Delete("data/f1"));
  EXPECT_EQ("resilient-bytes", ReadAll(**monarch, "data/f1", 15))
      << "read must fall back to the authoritative PFS copy";
}

TEST_F(MonarchTest, ThreeTierHierarchySpillsDownward) {
  pfs_ = std::make_shared<storage::MemoryEngine>("pfs");
  auto ram = std::make_shared<storage::MemoryEngine>("ram");
  auto ssd = std::make_shared<storage::MemoryEngine>("ssd");
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(pfs_->Write("data/f" + std::to_string(i), Bytes("0123456789")));
  }
  MonarchConfig config;
  config.cache_tiers.push_back(TierSpec{"ram", ram, 15});   // one file
  config.cache_tiers.push_back(TierSpec{"ssd", ssd, 25});   // two files
  config.pfs = TierSpec{"pfs", pfs_, 0};
  config.dataset_dir = "data";
  auto monarch = Monarch::Create(std::move(config));
  ASSERT_OK(monarch);

  std::vector<std::byte> buf(10);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(monarch.value()->Read("data/f" + std::to_string(i), 0, buf));
    monarch.value()->DrainPlacements();
  }
  const auto stats = monarch.value()->Stats();
  ASSERT_EQ(3u, stats.levels.size());
  EXPECT_EQ(10u, stats.levels[0].occupancy_bytes);  // 1 file in RAM
  EXPECT_EQ(20u, stats.levels[1].occupancy_bytes);  // 2 files on SSD
  EXPECT_EQ(3u, stats.placement.completed);
  EXPECT_EQ(1u, stats.placement.rejected_no_space);  // 4th file stays on PFS
}

}  // namespace
}  // namespace monarch::core
