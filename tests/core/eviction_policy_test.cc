// Eviction-correctness tests for the ISSUE 6 placement policies: the
// policy-side ranking rules (Belady ordering, protect windows, hotspot
// decay) and the handler-side mechanics they plug into (read pins,
// peer-directory notifications, dynamic headroom after refusals).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "../test_support.h"
#include "cluster/peer_group.h"
#include "core/metadata_container.h"
#include "core/placement_handler.h"
#include "core/placement_policy.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;

// ---------------------------------------------------------------------
// Policy-level: victim ranking rules, no handler involved.
// ---------------------------------------------------------------------

class EvictionPolicyTest : public ::testing::Test {
 protected:
  static constexpr int kPfsLevel = 1;

  /// Register a file and mark it placed on level 0.
  FileInfoPtr Placed(const std::string& name, std::uint64_t last_access = 0) {
    metadata_.Register(name, 16, kPfsLevel);
    FileInfoPtr info = metadata_.Lookup(name);
    info->level.store(0);
    info->state.store(PlacementState::kPlaced);
    info->last_access.store(last_access);
    return info;
  }

  /// Register a PFS-only file (an eviction's "incoming" side).
  FileInfoPtr Incoming(const std::string& name) {
    metadata_.Register(name, 16, kPfsLevel);
    return metadata_.Lookup(name);
  }

  static std::vector<std::string> Names(const std::vector<FileInfoPtr>& v) {
    std::vector<std::string> names;
    for (const auto& f : v) names.push_back(f->name);
    return names;
  }

  MetadataContainer metadata_;
};

TEST_F(EvictionPolicyTest, FactoryKnowsEveryPolicyAndRejectsTypos) {
  for (const auto& [name, evicts, prefetch_evicts] :
       std::vector<std::tuple<std::string, bool, bool>>{
           {"first-fit", false, false},
           {"round-robin", false, false},
           {"lru", true, false},
           {"hotspot", true, false},
           {"clairvoyant", true, true}}) {
    auto policy = MakePlacementPolicyByName(name);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ((*policy)->Name(), name);
    EXPECT_EQ((*policy)->EvictsUnderPressure(), evicts) << name;
    EXPECT_EQ((*policy)->PrefetchMayEvict(), prefetch_evicts) << name;
  }
  // "" means "the default" for configs that never set the key.
  ASSERT_TRUE(MakePlacementPolicyByName("").ok());
  EXPECT_EQ((*MakePlacementPolicyByName(""))->Name(), "first-fit");
  EXPECT_FALSE(MakePlacementPolicyByName("belady").ok());
  EXPECT_FALSE(MakePlacementPolicyByName("LRU").ok()) << "names are exact";
}

TEST_F(EvictionPolicyTest, LruRanksOldestAccessFirst) {
  Placed("a", /*last_access=*/30);
  Placed("b", /*last_access=*/10);
  Placed("c", /*last_access=*/20);
  auto incoming = Incoming("d");
  LruPolicy lru;
  EXPECT_EQ(Names(lru.SelectVictims(metadata_, *incoming, false)),
            (std::vector<std::string>{"b", "c", "a"}));
  // The incoming file itself is never its own victim.
  auto self = Placed("e", 1);
  const auto victims = Names(lru.SelectVictims(metadata_, *self, true));
  EXPECT_EQ(std::count(victims.begin(), victims.end(), "e"), 0);
}

TEST_F(EvictionPolicyTest, HotspotDecayHalvesCountsAndEvictsColdestFirst) {
  HotspotPolicy policy(/*decay_interval=*/8);
  auto hot = Placed("hot");
  auto cold = Placed("cold");
  for (int i = 0; i < 6; ++i) policy.OnAccess(*hot);
  policy.OnAccess(*cold);
  EXPECT_EQ(policy.FrequencyOf("hot"), 6u);
  EXPECT_EQ(policy.FrequencyOf("cold"), 1u);

  auto incoming = Incoming("new");
  auto victims = Names(policy.SelectVictims(metadata_, *incoming, true));
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims.front(), "cold");

  // The 8th access triggers the dm-cache halving; zeroed buckets drop.
  policy.OnAccess(*hot);
  EXPECT_EQ(policy.FrequencyOf("hot"), 3u);
  EXPECT_EQ(policy.FrequencyOf("cold"), 0u);
}

TEST_F(EvictionPolicyTest, ClairvoyantTracksScheduleClockAndNextAccess) {
  ClairvoyantPolicy policy(/*protect_window=*/2);
  auto a = Placed("a");
  auto b = Placed("b");
  policy.OnSchedule({"a", "b", "a", "c"});
  EXPECT_EQ(policy.ScheduleClock(), 0u);
  ASSERT_TRUE(policy.NextAccessOf("a").has_value());
  EXPECT_EQ(*policy.NextAccessOf("a"), 0u);
  EXPECT_EQ(*policy.NextAccessOf("b"), 1u);
  EXPECT_FALSE(policy.NextAccessOf("never-named").has_value());

  policy.OnAccess(*a);
  EXPECT_EQ(policy.ScheduleClock(), 1u);
  EXPECT_EQ(*policy.NextAccessOf("a"), 2u);
  policy.OnAccess(*b);
  policy.OnAccess(*a);
  EXPECT_EQ(policy.ScheduleClock(), 3u);
  EXPECT_FALSE(policy.NextAccessOf("a").has_value())
      << "both occurrences consumed";

  // Reinstalling a schedule resets the clock and the consumed history.
  policy.OnSchedule({"b", "a"});
  EXPECT_EQ(policy.ScheduleClock(), 0u);
  EXPECT_EQ(*policy.NextAccessOf("a"), 1u);
}

TEST_F(EvictionPolicyTest, ClairvoyantEvictsFarthestNextAccess) {
  ClairvoyantPolicy policy(/*protect_window=*/0);
  Placed("soon");
  Placed("later");
  Placed("farthest");
  auto incoming = Incoming("incoming");
  policy.OnSchedule({"incoming", "soon", "later", "farthest"});
  const auto victims =
      Names(policy.SelectVictims(metadata_, *incoming, false));
  // Belady: farthest next access first; "soon"/"later" rank behind it
  // but are still offered (the handler stops once space suffices).
  ASSERT_FALSE(victims.empty());
  EXPECT_EQ(victims.front(), "farthest");
}

TEST_F(EvictionPolicyTest, ClairvoyantNeverEvictsWithinProtectWindow) {
  ClairvoyantPolicy policy(/*protect_window=*/4);
  Placed("imminent");   // next access 1: inside the window
  Placed("far");        // next access 20: evictable
  auto incoming = Incoming("incoming");
  std::vector<std::string> schedule(21, "filler");
  schedule[1] = "imminent";
  schedule[10] = "incoming";
  schedule[20] = "far";
  policy.OnSchedule(schedule);
  const auto victims =
      Names(policy.SelectVictims(metadata_, *incoming, false));
  EXPECT_EQ(std::count(victims.begin(), victims.end(), "imminent"), 0)
      << "a file needed within the protect window must never be a victim";
  EXPECT_EQ(victims, std::vector<std::string>{"far"});
}

TEST_F(EvictionPolicyTest, ClairvoyantProtectsSoonerNeededResidents) {
  // The resident is needed BEFORE the incoming prefetch: evicting it
  // would trade a near hit for a far one, so the eviction is refused.
  ClairvoyantPolicy policy(/*protect_window=*/0);
  Placed("resident");
  auto incoming = Incoming("incoming");
  policy.OnSchedule({"filler", "resident", "incoming"});
  EXPECT_TRUE(policy.SelectVictims(metadata_, *incoming, false).empty());

  // The same incoming file being demand-read RIGHT NOW is worth "now":
  // the resident's position 1 is later than the clock, so it yields.
  // (Past-side protection does not apply — "resident" was never read.)
  const auto victims =
      Names(policy.SelectVictims(metadata_, *incoming, true));
  EXPECT_EQ(victims, std::vector<std::string>{"resident"});
}

TEST_F(EvictionPolicyTest, ClairvoyantRefusesPrefetchOfNeverAgainFile) {
  ClairvoyantPolicy policy(/*protect_window=*/0);
  Placed("resident");
  auto incoming = Incoming("one-shot");
  policy.OnSchedule({"one-shot", "filler", "resident"});
  policy.OnAccess(*incoming);  // its only occurrence is consumed
  // A speculative prefetch of a never-again file cannot pay off.
  EXPECT_TRUE(policy.SelectVictims(metadata_, *incoming, false).empty());
  // But an active demand read of it still deserves the space.
  EXPECT_FALSE(policy.SelectVictims(metadata_, *incoming, true).empty());
}

TEST_F(EvictionPolicyTest, ClairvoyantProtectsRecentlyConsumedFiles) {
  // Past-side protection: a file whose schedule position just rolled by
  // is likely mid-visit (chunked readers) and must not be the victim,
  // even when its NEXT access is the farthest of all.
  ClairvoyantPolicy policy(/*protect_window=*/2);
  auto fresh = Placed("fresh");
  Placed("other");
  auto incoming = Incoming("incoming");
  std::vector<std::string> schedule(30, "filler");
  schedule[0] = "fresh";
  schedule[2] = "incoming";
  schedule[10] = "other";
  schedule[29] = "fresh";  // farthest next access -> Belady's top pick
  policy.OnSchedule(schedule);
  policy.OnAccess(*fresh);  // consume position 0: the visit is in flight
  const auto victims =
      Names(policy.SelectVictims(metadata_, *incoming, true));
  EXPECT_EQ(std::count(victims.begin(), victims.end(), "fresh"), 0)
      << "consumed within 4x the protect window: still mid-visit";
  EXPECT_EQ(victims, std::vector<std::string>{"other"});
}

TEST_F(EvictionPolicyTest, ClairvoyantWithoutScheduleDegradesToLru) {
  ClairvoyantPolicy policy;
  Placed("old", /*last_access=*/1);
  Placed("new", /*last_access=*/2);
  auto incoming = Incoming("incoming");
  const auto victims =
      Names(policy.SelectVictims(metadata_, *incoming, true));
  EXPECT_EQ(victims, (std::vector<std::string>{"old", "new"}));
}

// ---------------------------------------------------------------------
// Handler-level: pins, peer notifications, dynamic headroom.
// ---------------------------------------------------------------------

class EvictionHandlerTest : public ::testing::Test {
 protected:
  void Build(std::uint64_t quota, PlacementPolicyPtr policy,
             PeerViewPtr peer_view = nullptr) {
    pfs_engine_ = std::make_shared<storage::MemoryEngine>("pfs");
    std::vector<StorageDriverPtr> drivers;
    tier_engine_ = std::make_shared<storage::MemoryEngine>("tier0");
    drivers.push_back(
        std::make_unique<StorageDriver>("tier0", tier_engine_, quota, false));
    drivers.push_back(
        std::make_unique<StorageDriver>("pfs", pfs_engine_, 0, true));
    hierarchy_ =
        std::move(StorageHierarchy::Create(std::move(drivers))).value();
    PlacementOptions options;
    options.num_threads = 2;
    handler_ = std::make_unique<PlacementHandler>(
        *hierarchy_, metadata_, std::move(policy), options,
        ResilienceOptions{}, std::move(peer_view));
  }

  FileInfoPtr AddPfsFile(const std::string& name, const std::string& data) {
    EXPECT_TRUE(pfs_engine_->Write(name, Bytes(data)).ok());
    metadata_.Register(name, data.size(), hierarchy_->pfs_level());
    return metadata_.Lookup(name);
  }

  /// Claim + demand-stage + drain.
  void Stage(const FileInfoPtr& file) {
    ASSERT_TRUE(file->TryBeginFetch());
    handler_->SchedulePlacement(file, std::nullopt);
    handler_->Drain();
  }

  storage::StorageEnginePtr pfs_engine_;
  storage::StorageEnginePtr tier_engine_;
  std::unique_ptr<StorageHierarchy> hierarchy_;
  MetadataContainer metadata_;
  std::unique_ptr<PlacementHandler> handler_;
};

TEST_F(EvictionHandlerTest, ReadPinBlocksEvictionUntilReleased) {
  Build(/*quota=*/15, MakeLruPolicy());
  auto f1 = AddPfsFile("f1", "0123456789");
  f1->last_access.store(1);
  Stage(f1);
  ASSERT_EQ(PlacementState::kPlaced, f1->state.load());

  // A demand read is mid-flight on f1's staged copy.
  f1->read_pins.fetch_add(1);

  auto f2 = AddPfsFile("f2", "0123456789");
  f2->last_access.store(2);
  Stage(f2);

  // The only victim was pinned: f1 survives with its copy intact, f2
  // bounces as retryable (not unplaceable) with stage_refused latched.
  EXPECT_EQ(PlacementState::kPlaced, f1->state.load());
  EXPECT_EQ(0, f1->level.load());
  EXPECT_EQ(PlacementState::kPfsOnly, f2->state.load());
  EXPECT_TRUE(f2->stage_refused.load());
  const auto stats = handler_->Stats();
  EXPECT_EQ(0u, stats.evictions);
  EXPECT_GE(stats.eviction_pinned_skips, 1u);
  EXPECT_GE(stats.eviction_refused, 1u);
  std::vector<std::byte> buf(10);
  EXPECT_TRUE(tier_engine_->Read("f1", 0, buf).ok())
      << "the pinned copy's bytes must still be on the tier";

  // The pin is released (the read finished): now the eviction goes
  // through. The next visit's offset-0 read re-arms stage_refused; the
  // handler-level equivalent is clearing it before re-claiming.
  f1->read_pins.fetch_sub(1);
  f2->stage_refused.store(false);
  Stage(f2);
  EXPECT_EQ(PlacementState::kPlaced, f2->state.load());
  EXPECT_EQ(PlacementState::kPfsOnly, f1->state.load());
  EXPECT_EQ(1u, handler_->Stats().evictions);
}

TEST_F(EvictionHandlerTest, DynamicHeadroomAfterRefusal) {
  // Regression for the free-space-only-grows assumption: under an
  // eviction-capable policy a no-space rejection must stay retryable,
  // because headroom is dynamic — the same file can fit later once an
  // eviction frees room. (Under first-fit the same rejection is
  // terminal: kUnplaceable.)
  Build(/*quota=*/15, MakeClairvoyantPolicy(/*protect_window=*/0));
  auto resident = AddPfsFile("resident", "0123456789");
  Stage(resident);
  ASSERT_EQ(PlacementState::kPlaced, resident->state.load());

  // The schedule says the resident is needed before "blocked" is ever
  // read again, so clairvoyant refuses to displace it.
  auto blocked = AddPfsFile("blocked", "0123456789");
  handler_->InstallSchedule({"resident", "blocked"});
  Stage(blocked);
  EXPECT_EQ(PlacementState::kPfsOnly, blocked->state.load())
      << "refusal must leave the file retryable, not unplaceable";
  EXPECT_TRUE(blocked->stage_refused.load());
  EXPECT_GE(handler_->Stats().eviction_refused, 1u);

  // The schedule advances past the resident's last access: now the same
  // incoming file wins and the previously-refused placement succeeds.
  handler_->NoteAccess(*resident);
  blocked->stage_refused.store(false);
  Stage(blocked);
  EXPECT_EQ(PlacementState::kPlaced, blocked->state.load());
  EXPECT_EQ(PlacementState::kPfsOnly, resident->state.load());
  EXPECT_EQ(1u, handler_->Stats().evictions);
  EXPECT_EQ(10u, hierarchy_->Level(0).occupancy_bytes())
      << "evicted quota must be released, placed quota reserved";
}

TEST_F(EvictionHandlerTest, EvictionNotifiesPeerDirectory) {
  // A cooperatively-cached node must stop advertising an evicted copy:
  // the handler's OnDropped path ends in FileDirectory::MarkEvicted.
  cluster::PeerGroup group(2);
  group.RegisterNode(0, std::make_shared<storage::MemoryEngine>("n0"));
  group.RegisterNode(1, std::make_shared<storage::MemoryEngine>("n1"));
  Build(/*quota=*/15, MakeLruPolicy(), group.MakePeerView(0));

  auto f1 = AddPfsFile("data/f1", "0123456789");
  f1->last_access.store(1);
  Stage(f1);
  ASSERT_EQ(PlacementState::kPlaced, f1->state.load());
  EXPECT_TRUE(group.directory().PlacedHolder("data/f1", /*exclude_node=*/1)
                  .has_value())
      << "publishing must advertise the copy to peers";

  auto f2 = AddPfsFile("data/f2", "0123456789");
  f2->last_access.store(2);
  Stage(f2);
  ASSERT_EQ(PlacementState::kPfsOnly, f1->state.load());
  EXPECT_FALSE(group.directory().PlacedHolder("data/f1", /*exclude_node=*/1)
                   .has_value())
      << "eviction must retract the peer advertisement (MarkEvicted)";
  EXPECT_TRUE(group.directory().PlacedHolder("data/f2", /*exclude_node=*/1)
                  .has_value());
}

}  // namespace
}  // namespace monarch::core
