#include <gtest/gtest.h>

#include <memory>

#include "../test_support.h"
#include "core/monarch.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;

class PrestageTest : public ::testing::Test {
 protected:
  Result<std::unique_ptr<Monarch>> Build(std::uint64_t quota, int files) {
    pfs_ = std::make_shared<storage::MemoryEngine>("pfs");
    local_ = std::make_shared<storage::MemoryEngine>("local");
    for (int i = 0; i < files; ++i) {
      EXPECT_TRUE(
          pfs_->Write("data/f" + std::to_string(i), Bytes("0123456789"))
              .ok());
    }
    MonarchConfig config;
    config.cache_tiers.push_back(TierSpec{"local", local_, quota});
    config.pfs = TierSpec{"pfs", pfs_, 0};
    config.dataset_dir = "data";
    config.placement.num_threads = 2;
    return Monarch::Create(std::move(config));
  }

  std::shared_ptr<storage::MemoryEngine> pfs_;
  std::shared_ptr<storage::MemoryEngine> local_;
};

TEST_F(PrestageTest, StagesEverythingBeforeAnyRead) {
  auto monarch = Build(1000, 5);
  ASSERT_OK(monarch);
  EXPECT_EQ(5u, monarch.value()->Prestage());

  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(5u, stats.placement.completed);
  EXPECT_EQ(50u, stats.levels[0].occupancy_bytes);

  // The very first framework read is already served locally — the
  // §III-A option (i) behaviour.
  std::vector<std::byte> buf(10);
  ASSERT_OK(monarch.value()->Read("data/f0", 0, buf));
  EXPECT_EQ(1u, monarch.value()->Stats().levels[0].reads);
  EXPECT_EQ(0u, monarch.value()->Stats().levels[1].reads);
}

TEST_F(PrestageTest, RespectsQuota) {
  auto monarch = Build(25, 5);  // room for 2 of 5 files
  ASSERT_OK(monarch);
  EXPECT_EQ(5u, monarch.value()->Prestage());
  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(2u, stats.placement.completed);
  EXPECT_EQ(3u, stats.placement.rejected_no_space);
  EXPECT_LE(stats.levels[0].occupancy_bytes, 25u);
}

TEST_F(PrestageTest, IdempotentSecondCallSchedulesNothing) {
  auto monarch = Build(1000, 4);
  ASSERT_OK(monarch);
  EXPECT_EQ(4u, monarch.value()->Prestage());
  EXPECT_EQ(0u, monarch.value()->Prestage())
      << "placed/unplaceable files must not re-stage";
}

TEST_F(PrestageTest, MixesWithDuringTrainingPlacement) {
  auto monarch = Build(1000, 3);
  ASSERT_OK(monarch);
  // Read one file first (claims it through the normal read path)...
  std::vector<std::byte> buf(10);
  ASSERT_OK(monarch.value()->Read("data/f1", 0, buf));
  monarch.value()->DrainPlacements();
  // ...then prestage the rest: only the two unclaimed files schedule.
  EXPECT_EQ(2u, monarch.value()->Prestage());
  EXPECT_EQ(3u, monarch.value()->Stats().placement.completed);
}

TEST_F(PrestageTest, NonBlockingVariantEventuallyCompletes) {
  auto monarch = Build(1000, 8);
  ASSERT_OK(monarch);
  EXPECT_EQ(8u, monarch.value()->Prestage(/*block=*/false));
  monarch.value()->DrainPlacements();
  EXPECT_EQ(8u, monarch.value()->Stats().placement.completed);
}

TEST_F(PrestageTest, PrestageBytesMatchPfsReads) {
  auto monarch = Build(1000, 6);
  ASSERT_OK(monarch);
  monarch.value()->Prestage();
  // Each staged file is read from the PFS exactly once (no double
  // fetches, no retries on the healthy path).
  EXPECT_EQ(6u, pfs_->Stats().Snapshot().read_ops);
  EXPECT_EQ(60u, pfs_->Stats().Snapshot().bytes_read);
}

}  // namespace
}  // namespace monarch::core
