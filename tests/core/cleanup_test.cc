#include <gtest/gtest.h>

#include <memory>

#include "../test_support.h"
#include "core/monarch.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;

class CleanupTest : public ::testing::Test {
 protected:
  Result<std::unique_ptr<Monarch>> Build(bool cleanup_on_shutdown,
                                         int files = 4) {
    pfs_ = std::make_shared<storage::MemoryEngine>("pfs");
    local_ = std::make_shared<storage::MemoryEngine>("local");
    for (int i = 0; i < files; ++i) {
      EXPECT_TRUE(
          pfs_->Write("data/f" + std::to_string(i), Bytes("0123456789"))
              .ok());
    }
    MonarchConfig config;
    config.cache_tiers.push_back(TierSpec{"local", local_, 1000});
    config.pfs = TierSpec{"pfs", pfs_, 0};
    config.dataset_dir = "data";
    config.placement.num_threads = 2;
    config.cleanup_staged_on_shutdown = cleanup_on_shutdown;
    return Monarch::Create(std::move(config));
  }

  void StageAll(Monarch& monarch, int files = 4) {
    std::vector<std::byte> buf(10);
    for (int i = 0; i < files; ++i) {
      ASSERT_OK(monarch.Read("data/f" + std::to_string(i), 0, buf));
    }
    monarch.DrainPlacements();
  }

  std::shared_ptr<storage::MemoryEngine> pfs_;
  std::shared_ptr<storage::MemoryEngine> local_;
};

TEST_F(CleanupTest, CleanupRemovesStagedCopiesAndResetsOccupancy) {
  auto monarch = Build(false);
  ASSERT_OK(monarch);
  StageAll(**monarch);
  ASSERT_EQ(40u, local_->TotalBytes());

  EXPECT_EQ(4u, monarch.value()->CleanupStagedCopies());
  EXPECT_EQ(0u, local_->TotalBytes());
  EXPECT_EQ(0u, monarch.value()->Stats().levels[0].occupancy_bytes);
}

TEST_F(CleanupTest, ReadsAfterCleanupFallBackToPfs) {
  auto monarch = Build(false);
  ASSERT_OK(monarch);
  StageAll(**monarch);
  monarch.value()->CleanupStagedCopies();

  std::vector<std::byte> buf(10);
  const auto pfs_reads_before =
      monarch.value()->Stats().levels[1].reads;
  ASSERT_OK(monarch.value()->Read("data/f0", 0, buf));
  EXPECT_EQ(pfs_reads_before + 1,
            monarch.value()->Stats().levels[1].reads)
      << "files reverted to PFS-resident must be served by the PFS";
}

TEST_F(CleanupTest, CleanupIsIdempotent) {
  auto monarch = Build(false);
  ASSERT_OK(monarch);
  StageAll(**monarch);
  EXPECT_EQ(4u, monarch.value()->CleanupStagedCopies());
  EXPECT_EQ(0u, monarch.value()->CleanupStagedCopies());
}

TEST_F(CleanupTest, ShutdownHonoursCleanupFlag) {
  auto monarch = Build(/*cleanup_on_shutdown=*/true);
  ASSERT_OK(monarch);
  StageAll(**monarch);
  ASSERT_GT(local_->TotalBytes(), 0u);
  monarch.value()->Shutdown();
  EXPECT_EQ(0u, local_->TotalBytes())
      << "ephemeral mode must leave the scratch tier clean";
}

TEST_F(CleanupTest, ShutdownLeavesCopiesWithoutFlag) {
  auto monarch = Build(/*cleanup_on_shutdown=*/false);
  ASSERT_OK(monarch);
  StageAll(**monarch);
  monarch.value()->Shutdown();
  EXPECT_EQ(40u, local_->TotalBytes());
}

TEST_F(CleanupTest, CleanupSkipsUnplacedFiles) {
  auto monarch = Build(false);
  ASSERT_OK(monarch);
  // Stage only two of four files.
  std::vector<std::byte> buf(10);
  ASSERT_OK(monarch.value()->Read("data/f0", 0, buf));
  ASSERT_OK(monarch.value()->Read("data/f1", 0, buf));
  monarch.value()->DrainPlacements();
  EXPECT_EQ(2u, monarch.value()->CleanupStagedCopies());
}

}  // namespace
}  // namespace monarch::core
