// Property-based suites: placement invariants checked across a
// parameterised sweep of (quota ratio, file count, tier count, thread
// count) combinations, each driving a full first-epoch workload against
// the real middleware.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <thread>

#include "../test_support.h"
#include "core/monarch.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;

struct PropertyCase {
  double quota_ratio;   ///< local quota / dataset bytes
  int num_files;
  int cache_tiers;      ///< writable levels
  int placement_threads;
  int reader_threads;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const auto& c = info.param;
  return "q" + std::to_string(static_cast<int>(c.quota_ratio * 100)) +
         "_f" + std::to_string(c.num_files) + "_t" +
         std::to_string(c.cache_tiers) + "_p" +
         std::to_string(c.placement_threads) + "_r" +
         std::to_string(c.reader_threads);
}

class PlacementPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  static constexpr std::uint64_t kFileSize = 256;

  void SetUp() override {
    const PropertyCase& param = GetParam();
    pfs_ = std::make_shared<storage::MemoryEngine>("pfs");
    for (int i = 0; i < param.num_files; ++i) {
      std::string content(kFileSize, static_cast<char>('A' + i % 26));
      ASSERT_OK(pfs_->Write("data/f" + std::to_string(i), Bytes(content)));
    }
    const auto dataset_bytes =
        static_cast<std::uint64_t>(param.num_files) * kFileSize;
    const auto total_quota = static_cast<std::uint64_t>(
        param.quota_ratio * static_cast<double>(dataset_bytes));

    MonarchConfig config;
    for (int t = 0; t < param.cache_tiers; ++t) {
      auto engine = std::make_shared<storage::MemoryEngine>(
          "cache" + std::to_string(t));
      cache_engines_.push_back(engine);
      config.cache_tiers.push_back(TierSpec{
          "cache" + std::to_string(t), engine,
          std::max<std::uint64_t>(
              1, total_quota / static_cast<std::uint64_t>(param.cache_tiers))});
    }
    config.pfs = TierSpec{"pfs", pfs_, 0};
    config.dataset_dir = "data";
    config.placement.num_threads = param.placement_threads;
    auto monarch = Monarch::Create(std::move(config));
    ASSERT_OK(monarch);
    monarch_ = std::move(monarch).value();
  }

  /// One full "epoch": every file read once, in parallel.
  void RunEpoch() {
    const PropertyCase& param = GetParam();
    std::vector<std::thread> threads;
    for (int t = 0; t < param.reader_threads; ++t) {
      threads.emplace_back([this, t, &param] {
        std::vector<std::byte> buf(kFileSize);
        for (int i = t; i < param.num_files; i += param.reader_threads) {
          auto read =
              monarch_->Read("data/f" + std::to_string(i), 0, buf);
          ASSERT_TRUE(read.ok()) << read.status();
          ASSERT_EQ(kFileSize, read.value());
          // Byte-correctness regardless of serving tier.
          ASSERT_EQ(static_cast<char>('A' + i % 26),
                    static_cast<char>(buf[0]));
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  std::shared_ptr<storage::MemoryEngine> pfs_;
  std::vector<storage::StorageEnginePtr> cache_engines_;
  std::unique_ptr<Monarch> monarch_;
};

TEST_P(PlacementPropertyTest, InvariantsHoldAfterTwoEpochs) {
  RunEpoch();
  monarch_->DrainPlacements();
  RunEpoch();
  monarch_->DrainPlacements();

  const auto stats = monarch_->Stats();
  const auto snapshot = monarch_->metadata().Snapshot();
  const int pfs_level = monarch_->hierarchy().pfs_level();

  // INVARIANT 1: no tier ever exceeds its quota.
  for (int level = 0; level < pfs_level; ++level) {
    const auto& tier = monarch_->hierarchy().Level(level);
    EXPECT_LE(tier.occupancy_bytes(), tier.quota_bytes())
        << "tier " << level;
  }

  // INVARIANT 2: every file is in a consistent terminal state, and its
  // level agrees with that state.
  std::uint64_t placed_bytes = 0;
  for (const auto& entry : snapshot) {
    switch (entry.state) {
      case PlacementState::kPlaced:
        EXPECT_LT(entry.level, pfs_level) << entry.name;
        placed_bytes += entry.size;
        break;
      case PlacementState::kUnplaceable:
      case PlacementState::kPfsOnly:
        EXPECT_EQ(pfs_level, entry.level) << entry.name;
        break;
      case PlacementState::kFetching:
        ADD_FAILURE() << entry.name << " still fetching after drain";
        break;
    }
  }

  // INVARIANT 3: occupancy accounting equals the bytes actually placed.
  std::uint64_t total_occupancy = 0;
  for (int level = 0; level < pfs_level; ++level) {
    total_occupancy += monarch_->hierarchy().Level(level).occupancy_bytes();
  }
  EXPECT_EQ(placed_bytes, total_occupancy);
  EXPECT_EQ(placed_bytes, stats.placement.bytes_staged);

  // INVARIANT 4: no evictions under the paper's policy.
  EXPECT_EQ(0u, stats.placement.evictions);

  // INVARIANT 5: placement terminates — scheduled == completed +
  // rejected + failed, with no failures on the memory backend.
  EXPECT_EQ(stats.placement.scheduled,
            stats.placement.completed + stats.placement.rejected_no_space);
  EXPECT_EQ(0u, stats.placement.failed);

  // INVARIANT 6: when the dataset fits entirely, everything placed and
  // epoch 2 issued zero PFS reads; when it does not, the PFS still serves
  // the overflow.
  const auto& param = GetParam();
  if (param.quota_ratio >= 1.1) {
    EXPECT_EQ(static_cast<std::uint64_t>(param.num_files),
              stats.placement.completed);
  } else if (param.quota_ratio < 0.9) {
    EXPECT_GT(stats.placement.rejected_no_space, 0u);
    EXPECT_GT(stats.levels.back().reads,
              static_cast<std::uint64_t>(param.num_files))
        << "epoch 2 must still read unplaced files from the PFS";
  }

  // INVARIANT 7: total reads served == 2 epochs x num_files.
  EXPECT_EQ(static_cast<std::uint64_t>(2 * param.num_files),
            stats.total_reads());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementPropertyTest,
    ::testing::Values(
        // Everything fits comfortably (the 100 GiB scenario).
        PropertyCase{2.0, 32, 1, 2, 4},
        PropertyCase{1.5, 64, 1, 6, 8},
        // Roughly half fits (the 200 GiB scenario).
        PropertyCase{0.5, 32, 1, 2, 4},
        PropertyCase{0.5, 64, 2, 6, 8},
        // Tiny cache under heavy thread pressure.
        PropertyCase{0.1, 64, 1, 8, 8},
        PropertyCase{0.25, 48, 3, 4, 6},
        // Single-threaded extremes.
        PropertyCase{1.2, 16, 1, 1, 1},
        PropertyCase{0.3, 16, 2, 1, 1}),
    CaseName);

}  // namespace
}  // namespace monarch::core
