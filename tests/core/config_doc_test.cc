// Verifies the acceptance criterion of docs/CONFIG.md: the INI reference
// documents EVERY (section, key) pair ParseConfig accepts, documents
// nothing the parser rejects, and every catalogued sample value actually
// parses. The doc's per-section tables are diffed against
// ConfigKeyCatalogue() in both directions (the doc-catalogue pattern of
// tests/obs/doc_catalogue_test.cc), then one INI composed from all the
// samples is fed through ParseConfig end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.h"

#ifndef MONARCH_SOURCE_DIR
#error "tests/CMakeLists.txt must define MONARCH_SOURCE_DIR"
#endif

namespace monarch::core {
namespace {

/// The catalogue lists tier keys under "tier.0"; the doc writes the
/// section once as "tier.N". Fold both onto the doc's spelling.
std::string NormalizeSection(const std::string& section) {
  return section.starts_with("tier.") ? "tier.N" : section;
}

/// (section, key) pairs from docs/CONFIG.md: section headings are
/// "## `[name]`" lines, keys are the first backticked token of each
/// table row ("| `key` | ..."). The prose table-header rows ("| key |")
/// have no backticks and are skipped naturally.
std::set<std::pair<std::string, std::string>> DocumentedKeys() {
  const std::string path = std::string(MONARCH_SOURCE_DIR) + "/docs/CONFIG.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::set<std::pair<std::string, std::string>> keys;
  std::string line;
  std::string section;
  while (std::getline(in, line)) {
    if (line.starts_with("## `[")) {
      const std::size_t end = line.find("]`");
      EXPECT_NE(end, std::string::npos) << "malformed heading: " << line;
      section = line.substr(5, end - 5);
      continue;
    }
    if (section.empty() || !line.starts_with("| `")) continue;
    const std::size_t start = line.find('`') + 1;
    const std::size_t end = line.find('`', start);
    if (end == std::string::npos) continue;
    keys.emplace(section, line.substr(start, end - start));
  }
  return keys;
}

std::set<std::pair<std::string, std::string>> CatalogueKeys() {
  std::set<std::pair<std::string, std::string>> keys;
  for (const ConfigKeyInfo& info : ConfigKeyCatalogue()) {
    keys.emplace(NormalizeSection(info.section), info.key);
  }
  return keys;
}

std::string Render(const std::set<std::pair<std::string, std::string>>& keys) {
  std::ostringstream os;
  for (const auto& [section, key] : keys) {
    os << "[" << section << "] " << key << "  ";
  }
  return os.str();
}

TEST(ConfigDocTest, ReferenceCoversEveryParserKey) {
  const auto documented = DocumentedKeys();
  const auto catalogued = CatalogueKeys();
  ASSERT_FALSE(documented.empty());
  ASSERT_FALSE(catalogued.empty());

  std::set<std::pair<std::string, std::string>> undocumented;
  std::set_difference(catalogued.begin(), catalogued.end(),
                      documented.begin(), documented.end(),
                      std::inserter(undocumented, undocumented.begin()));
  EXPECT_TRUE(undocumented.empty())
      << "parser keys missing from docs/CONFIG.md: " << Render(undocumented);

  std::set<std::pair<std::string, std::string>> stale;
  std::set_difference(documented.begin(), documented.end(),
                      catalogued.begin(), catalogued.end(),
                      std::inserter(stale, stale.begin()));
  EXPECT_TRUE(stale.empty())
      << "docs/CONFIG.md documents keys the parser does not accept: "
      << Render(stale);
}

/// Every catalogue sample must actually parse: compose one INI that uses
/// all of them and feed it through ParseConfig. A key listed in the
/// catalogue but rejected by the parser (or a bad sample value) fails
/// here with the parser's own line-numbered error.
TEST(ConfigDocTest, EveryCatalogueSampleParses) {
  const std::vector<ConfigKeyInfo> catalogue = ConfigKeyCatalogue();
  std::map<std::string, std::vector<const ConfigKeyInfo*>> by_section;
  for (const ConfigKeyInfo& info : catalogue) {
    by_section[info.section].push_back(&info);
  }
  std::ostringstream ini;
  for (const auto& [section, infos] : by_section) {
    ini << "[" << section << "]\n";
    for (const ConfigKeyInfo* info : infos) {
      ini << info->key << " = " << info->sample << "\n";
    }
  }
  const auto parsed = ParseConfig(ini.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\nfrom INI:\n" << ini.str();

  // Spot-check that the samples flowed through to the parsed view.
  EXPECT_EQ(parsed->placement_policy, "clairvoyant");
  EXPECT_EQ(parsed->policy_knobs.hotspot_decay_interval, 256u);
  EXPECT_EQ(parsed->policy_knobs.clairvoyant_protect_window, 64u);
  ASSERT_EQ(parsed->cache_tiers.size(), 1u);
  EXPECT_TRUE(parsed->peer.enabled);
  EXPECT_TRUE(parsed->checkpoint.enabled);
}

/// Unknown keys stay hard errors in every section — the property the
/// "unknown keys are errors" promise in the doc rests on.
TEST(ConfigDocTest, UnknownKeysAreRejectedPerSection) {
  const std::string base =
      "[monarch]\n"
      "dataset_dir = data\n"
      "[tier.0]\n"
      "profile = ram\n"
      "quota = 1MiB\n"
      "[pfs]\n"
      "profile = ram\n";
  for (const std::string section :
       {"monarch", "tier.0", "pfs", "placement", "resilience", "peer",
        "checkpoint", "qos"}) {
    const std::string ini =
        base + "[" + section + "]\nno_such_key = 1\n";
    const auto parsed = ParseConfig(ini);
    EXPECT_FALSE(parsed.ok()) << "[" << section << "] accepted no_such_key";
  }
  // An unknown placement *policy* is also a parse-time error.
  const auto bad_policy =
      ParseConfig(base + "[placement]\npolicy = belady-typo\n");
  EXPECT_FALSE(bad_policy.ok());
}

}  // namespace
}  // namespace monarch::core
