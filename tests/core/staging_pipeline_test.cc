// Pipelined staging engine tests: the two-lane queue (demand priority,
// promotion, per-tier in-flight caps), the chunked copy path (CRC
// equivalence with the full-buffer fast path, bounded peak memory,
// donated prefixes) and the look-ahead prefetch cursor driven through
// Monarch::HintUpcoming. Suite names (StagingPipeline*, BufferPool*)
// are part of scripts/check.sh's TSan filter.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "../test_support.h"
#include "core/monarch.h"
#include "core/placement_handler.h"
#include "storage/memory_engine.h"
#include "util/buffer_pool.h"
#include "util/crc32c.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

/// Spin-wait for an asynchronous condition (worker-thread state changes).
bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 5000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// Memory engine wrapper that records the order files are first written
/// in and can block the copy of one chosen file until released — the
/// lever the lane-ordering tests use to hold a worker mid-copy while the
/// queues fill up behind it.
class GateEngine : public storage::StorageEngine {
 public:
  explicit GateEngine(std::string block_path)
      : inner_(std::make_shared<storage::MemoryEngine>("gated")),
        block_path_(std::move(block_path)) {}

  ~GateEngine() override { ReleaseBlocked(); }

  /// Blocks until the gated file's copy has started (and parked itself).
  void AwaitBlocked() {
    std::unique_lock lock(mu_);
    started_cv_.wait(lock, [this] { return blocked_; });
  }

  void ReleaseBlocked() {
    {
      std::lock_guard lock(mu_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

  [[nodiscard]] std::vector<std::string> write_order() const {
    std::lock_guard lock(mu_);
    return order_;
  }

  Result<std::size_t> Read(std::string_view path, std::uint64_t offset,
                           std::span<std::byte> dst) override {
    return inner_->Read(path, offset, dst);
  }
  Status Write(const std::string& path,
               std::span<const std::byte> data) override {
    RecordAndMaybeBlock(path);
    return inner_->Write(path, data);
  }
  Status WriteAt(const std::string& path, std::uint64_t offset,
                 std::span<const std::byte> data) override {
    if (offset == 0) RecordAndMaybeBlock(path);
    return inner_->WriteAt(path, offset, data);
  }
  Status Delete(const std::string& path) override {
    return inner_->Delete(path);
  }
  Result<std::uint64_t> FileSize(const std::string& path) override {
    return inner_->FileSize(path);
  }
  Result<bool> Exists(const std::string& path) override {
    return inner_->Exists(path);
  }
  Result<std::vector<storage::FileStat>> ListFiles(
      const std::string& dir) override {
    return inner_->ListFiles(dir);
  }
  storage::IoStats& Stats() override { return inner_->Stats(); }
  [[nodiscard]] std::string Name() const override { return "gate"; }

 private:
  void RecordAndMaybeBlock(const std::string& path) {
    std::unique_lock lock(mu_);
    order_.push_back(path);
    if (path == block_path_ && !released_) {
      blocked_ = true;
      started_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
  }

  std::shared_ptr<storage::MemoryEngine> inner_;
  const std::string block_path_;
  mutable std::mutex mu_;
  std::condition_variable started_cv_;
  std::condition_variable release_cv_;
  std::vector<std::string> order_;
  bool blocked_ = false;
  bool released_ = false;
};

// ---------------------------------------------------------------------------
// BufferPool

TEST(BufferPoolTest, ReusesBuffersAndTracksPeak) {
  BufferPool pool(/*capacity_bytes=*/32, /*chunk_bytes=*/8);
  EXPECT_EQ(8u, pool.chunk_bytes());
  EXPECT_EQ(32u, pool.capacity_bytes());
  EXPECT_EQ(0u, pool.in_use_bytes());
  {
    auto a = pool.Acquire();
    auto b = pool.Acquire();
    EXPECT_EQ(8u, a.bytes().size());
    EXPECT_EQ(16u, pool.in_use_bytes());
    EXPECT_EQ(16u, pool.peak_in_use_bytes());
  }
  EXPECT_EQ(0u, pool.in_use_bytes());
  // The high-water mark survives the release; a fresh lease reuses a
  // pooled buffer without raising it.
  auto c = pool.Acquire();
  EXPECT_EQ(8u, pool.in_use_bytes());
  EXPECT_EQ(16u, pool.peak_in_use_bytes());
}

TEST(BufferPoolTest, AcquireBlocksWhenBudgetExhausted) {
  BufferPool pool(/*capacity_bytes=*/8, /*chunk_bytes=*/8);  // one buffer
  auto held = std::make_unique<BufferPool::Lease>(pool.Acquire());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto lease = pool.Acquire();
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load())
      << "second Acquire must block while the whole budget is leased";

  held.reset();  // return the buffer; the waiter proceeds
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(8u, pool.peak_in_use_bytes()) << "budget was never exceeded";
}

// ---------------------------------------------------------------------------
// PlacementHandler two-lane pipeline

class StagingPipelineTest : public ::testing::Test {
 protected:
  void Build(std::vector<std::uint64_t> quotas, PlacementOptions options = {},
             int num_threads = 2,
             std::shared_ptr<GateEngine> tier0_engine = nullptr) {
    pfs_engine_ = std::make_shared<storage::MemoryEngine>("pfs");
    std::vector<StorageDriverPtr> drivers;
    cache_engines_.clear();
    for (std::size_t i = 0; i < quotas.size(); ++i) {
      storage::StorageEnginePtr engine;
      if (i == 0 && tier0_engine) {
        engine = tier0_engine;
      } else {
        engine =
            std::make_shared<storage::MemoryEngine>("tier" + std::to_string(i));
      }
      cache_engines_.push_back(engine);
      drivers.push_back(std::make_unique<StorageDriver>(
          "tier" + std::to_string(i), engine, quotas[i], false));
    }
    drivers.push_back(
        std::make_unique<StorageDriver>("pfs", pfs_engine_, 0, true));
    hierarchy_ = std::move(StorageHierarchy::Create(std::move(drivers))).value();
    options.num_threads = num_threads;
    handler_ = std::make_unique<PlacementHandler>(
        *hierarchy_, metadata_, MakeFirstFitPolicy(), options);
  }

  FileInfoPtr AddPfsFile(const std::string& name, const std::string& data) {
    EXPECT_TRUE(pfs_engine_->Write(name, Bytes(data)).ok());
    metadata_.Register(name, data.size(), hierarchy_->pfs_level());
    return metadata_.Lookup(name);
  }

  /// Claim + schedule in one step (what the read path / hint cursor do).
  void Stage(const FileInfoPtr& file,
             std::optional<std::vector<std::byte>> content,
             StagingLane lane = StagingLane::kDemand) {
    ASSERT_TRUE(file->TryBeginFetch()) << file->name;
    handler_->SchedulePlacement(file, std::move(content), lane);
  }

  storage::StorageEnginePtr pfs_engine_;
  std::vector<storage::StorageEnginePtr> cache_engines_;
  std::unique_ptr<StorageHierarchy> hierarchy_;
  MetadataContainer metadata_;
  std::unique_ptr<PlacementHandler> handler_;
};

TEST_F(StagingPipelineTest, ChunkedCopyMatchesFullBufferCrc) {
  PlacementOptions options;
  options.staging_chunk_bytes = 7;    // odd size => uneven final chunk
  options.staging_buffer_bytes = 14;  // two buffers
  Build({1000}, options);

  std::string payload;
  for (int i = 0; i < 100; ++i) payload.push_back(static_cast<char>('a' + i % 26));

  auto full = AddPfsFile("full", payload);
  auto chunked = AddPfsFile("chunked", payload);
  Stage(full, Bytes(payload));    // fast path: one Write of bytes in memory
  Stage(chunked, std::nullopt);   // chunk pipeline: streamed PFS reads
  handler_->Drain();

  ASSERT_EQ(PlacementState::kPlaced, full->state.load());
  ASSERT_EQ(PlacementState::kPlaced, chunked->state.load());

  // Incremental CRC over chunk boundaries == one-shot CRC of the file.
  EXPECT_EQ(Crc32c(Bytes(payload)), full->staged_crc.load());
  EXPECT_EQ(full->staged_crc.load(), chunked->staged_crc.load());

  std::vector<std::byte> staged(payload.size());
  ASSERT_OK(cache_engines_[0]->Read("chunked", 0, staged));
  EXPECT_EQ(payload, Text(staged));

  const auto stats = handler_->Stats();
  EXPECT_GE(stats.chunks_copied, 15u) << "100 bytes / 7-byte chunks";
}

TEST_F(StagingPipelineTest, PeakStagingMemoryBoundedByPool) {
  PlacementOptions options;
  options.staging_buffer_bytes = 4096;  // pool: 4 x 1 KiB chunks
  options.staging_chunk_bytes = 1024;
  Build({1 << 20}, options, /*num_threads=*/4);

  // Every file is 16x larger than a chunk and 4x larger than the whole
  // pool; a naive full-file copy would peak at 8 x 16 KiB.
  const std::string payload(16 * 1024, 'x');
  std::vector<FileInfoPtr> files;
  for (int i = 0; i < 8; ++i) {
    auto file = AddPfsFile("big" + std::to_string(i), payload);
    Stage(file, std::nullopt);
    files.push_back(std::move(file));
  }
  handler_->Drain();

  for (const auto& file : files) {
    EXPECT_EQ(PlacementState::kPlaced, file->state.load()) << file->name;
  }
  EXPECT_EQ(4096u, handler_->buffer_pool().capacity_bytes());
  EXPECT_LE(handler_->buffer_pool().peak_in_use_bytes(),
            handler_->buffer_pool().capacity_bytes())
      << "staging memory must stay within staging_buffer_bytes";
  EXPECT_EQ(8u * 16 * 1024, handler_->Stats().bytes_staged);
}

TEST_F(StagingPipelineTest, DemandNeverQueuedBehindPrefetch) {
  auto gate = std::make_shared<GateEngine>("blocker");
  Build({1000}, {}, /*num_threads=*/1, gate);

  // Park the single worker inside a prefetch copy, then queue more
  // prefetches and finally one demand task.
  auto blocker = AddPfsFile("blocker", "bbbbbbbbbb");
  Stage(blocker, Bytes("bbbbbbbbbb"), StagingLane::kPrefetch);
  gate->AwaitBlocked();

  std::vector<FileInfoPtr> prefetches;
  for (int i = 0; i < 4; ++i) {
    auto file = AddPfsFile("p" + std::to_string(i), "pppppppppp");
    Stage(file, Bytes("pppppppppp"), StagingLane::kPrefetch);
    prefetches.push_back(std::move(file));
  }
  auto demand = AddPfsFile("demand", "dddddddddd");
  Stage(demand, Bytes("dddddddddd"), StagingLane::kDemand);

  {
    const auto stats = handler_->Stats();
    EXPECT_EQ(1u, stats.queue_depth_demand);
    EXPECT_EQ(4u, stats.queue_depth_prefetch);
  }

  gate->ReleaseBlocked();
  handler_->Drain();

  const auto order = gate->write_order();
  ASSERT_EQ(6u, order.size());
  EXPECT_EQ("blocker", order[0]);
  EXPECT_EQ("demand", order[1])
      << "the demand task must pop before every queued prefetch";
  EXPECT_EQ(PlacementState::kPlaced, demand->state.load());
  for (const auto& file : prefetches) {
    EXPECT_EQ(PlacementState::kPlaced, file->state.load()) << file->name;
  }
  EXPECT_EQ(5u, handler_->Stats().prefetch_scheduled);
  EXPECT_EQ(5u, handler_->Stats().prefetch_completed);
}

TEST_F(StagingPipelineTest, InflightCapParksPrefetchButNotDemand) {
  auto gate = std::make_shared<GateEngine>("blocker");
  PlacementOptions options;
  options.tier_inflight_cap_bytes = 10;
  Build({1000}, options, /*num_threads=*/2, gate);

  // Fill the tier's in-flight budget with a gated demand copy.
  auto blocker = AddPfsFile("blocker", "bbbbbbbbbb");  // 10 bytes == cap
  Stage(blocker, Bytes("bbbbbbbbbb"), StagingLane::kDemand);
  gate->AwaitBlocked();

  // A prefetch copy must park (tier saturated), not run.
  auto parked = AddPfsFile("parked", "pppppppppp");
  Stage(parked, Bytes("pppppppppp"), StagingLane::kPrefetch);
  ASSERT_TRUE(WaitFor([&] {
    return handler_->Stats().queue_depth_prefetch == 1;
  })) << "prefetch past the in-flight cap must park, not copy";

  // A demand copy is exempt from the cap and completes while the tier is
  // still saturated by the blocker.
  auto demand = AddPfsFile("demand", "dddddddddd");
  Stage(demand, Bytes("dddddddddd"), StagingLane::kDemand);
  ASSERT_TRUE(WaitFor([&] {
    return demand->state.load() == PlacementState::kPlaced;
  })) << "demand staging must not wait on the prefetch in-flight cap";
  EXPECT_EQ(1u, handler_->Stats().queue_depth_prefetch)
      << "the parked prefetch stays parked while the tier is saturated";

  gate->ReleaseBlocked();
  handler_->Drain();
  EXPECT_EQ(PlacementState::kPlaced, blocker->state.load());
  EXPECT_EQ(PlacementState::kPlaced, parked->state.load())
      << "parked prefetches resume once the tier drains";
  EXPECT_EQ(0u, handler_->Stats().inflight_bytes);
}

TEST_F(StagingPipelineTest, PrefetchNeverEvictsEvenInEvictionMode) {
  PlacementOptions options;
  options.enable_eviction = true;
  Build({15}, options);

  auto placed = AddPfsFile("placed", "0123456789");
  placed->last_access.store(1);
  Stage(placed, std::nullopt);
  handler_->Drain();
  ASSERT_EQ(PlacementState::kPlaced, placed->state.load());

  // Speculative work must not push a placed file out...
  auto hinted = AddPfsFile("hinted", "0123456789");
  Stage(hinted, std::nullopt, StagingLane::kPrefetch);
  handler_->Drain();
  EXPECT_EQ(PlacementState::kPlaced, placed->state.load());
  EXPECT_EQ(PlacementState::kPfsOnly, hinted->state.load())
      << "a prefetch rejection is retryable, never kUnplaceable";
  EXPECT_EQ(0u, handler_->Stats().evictions);
  EXPECT_EQ(1u, handler_->Stats().prefetch_cancelled);

  // ...but the same file staged on the demand lane may evict.
  Stage(hinted, std::nullopt, StagingLane::kDemand);
  handler_->Drain();
  EXPECT_EQ(PlacementState::kPlaced, hinted->state.load());
  EXPECT_EQ(PlacementState::kPfsOnly, placed->state.load());
  EXPECT_EQ(1u, handler_->Stats().evictions);
}

TEST_F(StagingPipelineTest, PromoteToDemandJumpsTheQueue) {
  auto gate = std::make_shared<GateEngine>("blocker");
  Build({1000}, {}, /*num_threads=*/1, gate);

  auto blocker = AddPfsFile("blocker", "bbbbbbbbbb");
  Stage(blocker, Bytes("bbbbbbbbbb"), StagingLane::kDemand);
  gate->AwaitBlocked();

  auto first = AddPfsFile("first", "aaaaaaaaaa");
  auto second = AddPfsFile("second", "cccccccccc");
  Stage(first, Bytes("aaaaaaaaaa"), StagingLane::kPrefetch);
  Stage(second, Bytes("cccccccccc"), StagingLane::kPrefetch);

  // Demand overtakes `second`: it moves to the demand lane and runs
  // before `first` even though it was queued after it.
  EXPECT_TRUE(handler_->PromoteToDemand(second));
  EXPECT_FALSE(handler_->PromoteToDemand(blocker))
      << "a running copy has left the queues; nothing to promote";

  gate->ReleaseBlocked();
  handler_->Drain();

  const auto order = gate->write_order();
  ASSERT_EQ(3u, order.size());
  EXPECT_EQ("second", order[1]) << "promoted task runs on the demand lane";
  EXPECT_EQ("first", order[2]);
  const auto stats = handler_->Stats();
  EXPECT_EQ(1u, stats.prefetch_promoted);
  EXPECT_EQ(1u, stats.prefetch_completed)
      << "a promoted copy completes as demand, not prefetch";
}

TEST_F(StagingPipelineTest, CancelPrefetchesReturnsFilesRetryable) {
  auto gate = std::make_shared<GateEngine>("blocker");
  Build({1000}, {}, /*num_threads=*/1, gate);

  auto blocker = AddPfsFile("blocker", "bbbbbbbbbb");
  Stage(blocker, Bytes("bbbbbbbbbb"), StagingLane::kDemand);
  gate->AwaitBlocked();

  std::vector<FileInfoPtr> hinted;
  for (int i = 0; i < 3; ++i) {
    auto file = AddPfsFile("h" + std::to_string(i), "hhhhhhhhhh");
    file->prefetched.store(true);
    Stage(file, std::nullopt, StagingLane::kPrefetch);
    hinted.push_back(std::move(file));
  }

  EXPECT_EQ(3u, handler_->CancelPrefetches());
  for (const auto& file : hinted) {
    EXPECT_EQ(PlacementState::kPfsOnly, file->state.load()) << file->name;
    EXPECT_FALSE(file->prefetched.load()) << file->name;
  }
  EXPECT_EQ(3u, handler_->Stats().prefetch_cancelled);

  gate->ReleaseBlocked();
  handler_->Drain();
  // Cancelled != abandoned: the files can be staged again later.
  Stage(hinted[0], std::nullopt, StagingLane::kDemand);
  handler_->Drain();
  EXPECT_EQ(PlacementState::kPlaced, hinted[0]->state.load());
}

TEST_F(StagingPipelineTest, DonatedPrefixIsNotReReadFromPfs) {
  PlacementOptions options;
  options.staging_chunk_bytes = 4;
  options.staging_buffer_bytes = 8;
  Build({1000}, options);

  const std::string payload = "0123456789ABCDEFGHIJ";  // 20 bytes
  auto file = AddPfsFile("f", payload);
  const auto before = pfs_engine_->Stats().Snapshot();

  // The triggering read covered the first 10 bytes; the pipeline must
  // fetch only the remaining 10 from the PFS.
  Stage(file, Bytes(payload.substr(0, 10)));
  handler_->Drain();

  ASSERT_EQ(PlacementState::kPlaced, file->state.load());
  const auto delta = pfs_engine_->Stats().Snapshot() - before;
  EXPECT_EQ(10u, delta.bytes_read)
      << "donated leading bytes must enter the pipeline from memory";
  EXPECT_EQ(10u, handler_->Stats().donated_bytes);

  std::vector<std::byte> staged(payload.size());
  ASSERT_OK(cache_engines_[0]->Read("f", 0, staged));
  EXPECT_EQ(payload, Text(staged));
  EXPECT_EQ(Crc32c(Bytes(payload)), file->staged_crc.load())
      << "CRC must accumulate over donated and streamed chunks alike";
}

// ---------------------------------------------------------------------------
// Monarch look-ahead prefetching (HintUpcoming -> prefetch cursor)

class StagingPipelineMonarchTest : public ::testing::Test {
 protected:
  Result<std::unique_ptr<Monarch>> Build(
      std::uint64_t local_quota,
      const std::vector<std::pair<std::string, std::string>>& files,
      PlacementOptions placement = {}, int num_threads = 2,
      storage::StorageEnginePtr local_engine = nullptr) {
    pfs_ = std::make_shared<storage::MemoryEngine>("pfs");
    local_ = local_engine ? std::move(local_engine)
                          : std::make_shared<storage::MemoryEngine>("local");
    for (const auto& [name, data] : files) {
      EXPECT_TRUE(pfs_->Write("data/" + name, Bytes(data)).ok());
    }
    MonarchConfig config;
    config.cache_tiers.push_back(TierSpec{"local", local_, local_quota});
    config.pfs = TierSpec{"pfs", pfs_, 0};
    config.dataset_dir = "data";
    placement.num_threads = num_threads;
    config.placement = placement;
    return Monarch::Create(std::move(config));
  }

  std::string ReadAll(Monarch& monarch, const std::string& name,
                      std::size_t size) {
    std::vector<std::byte> buf(size);
    auto read = monarch.Read(name, 0, buf);
    EXPECT_TRUE(read.ok()) << read.status();
    buf.resize(read.value_or(0));
    return Text(buf);
  }

  std::shared_ptr<storage::MemoryEngine> pfs_;
  storage::StorageEnginePtr local_;
};

TEST_F(StagingPipelineMonarchTest, HintedEpochServesEntirelyFromCache) {
  PlacementOptions placement;
  placement.prefetch_lookahead = 8;
  auto monarch = Build(1 << 20,
                       {{"f1", "one"},
                        {"f2", "two"},
                        {"f3", "three"},
                        {"f4", "four"},
                        {"f5", "five"},
                        {"f6", "six"}},
                       placement);
  ASSERT_OK(monarch);

  const std::vector<std::string> order{"data/f1", "data/f2", "data/f3",
                                       "data/f4", "data/f5", "data/f6"};
  monarch.value()->HintUpcoming(order);
  monarch.value()->DrainPlacements();

  auto stats = monarch.value()->Stats();
  EXPECT_EQ(6u, stats.placement.prefetch_scheduled);
  EXPECT_EQ(6u, stats.placement.prefetch_completed);

  EXPECT_EQ("one", ReadAll(**monarch, "data/f1", 3));
  EXPECT_EQ("three", ReadAll(**monarch, "data/f3", 5));
  EXPECT_EQ("six", ReadAll(**monarch, "data/f6", 3));

  stats = monarch.value()->Stats();
  EXPECT_EQ(3u, stats.prefetch_hits)
      << "every demand read hit a hint-staged copy";
  EXPECT_EQ(0u, stats.pfs_reads())
      << "a fully prefetched epoch never touches the PFS on the read path";
}

TEST_F(StagingPipelineMonarchTest, LookaheadWindowLimitsClaims) {
  PlacementOptions placement;
  placement.prefetch_lookahead = 2;
  auto monarch = Build(1 << 20,
                       {{"f1", "one"},
                        {"f2", "two"},
                        {"f3", "three"},
                        {"f4", "four"}},
                       placement);
  ASSERT_OK(monarch);

  const std::vector<std::string> order{"data/f1", "data/f2", "data/f3",
                                       "data/f4"};
  monarch.value()->HintUpcoming(order);
  monarch.value()->DrainPlacements();
  EXPECT_EQ(2u, monarch.value()->Stats().placement.prefetch_scheduled)
      << "the cursor claims at most `lookahead` files ahead of demand";

  // A demand read of f1 moves the cursor and claims f3 (window [f2, f3]).
  ReadAll(**monarch, "data/f1", 3);
  monarch.value()->DrainPlacements();
  EXPECT_EQ(3u, monarch.value()->Stats().placement.prefetch_scheduled);

  // Reading out of hint order still advances past the furthest read.
  ReadAll(**monarch, "data/f3", 5);
  monarch.value()->DrainPlacements();
  EXPECT_EQ(4u, monarch.value()->Stats().placement.prefetch_scheduled);
}

TEST_F(StagingPipelineMonarchTest, DemandOvertakePromotesQueuedHint) {
  auto gate = std::make_shared<GateEngine>("data/b");
  PlacementOptions placement;
  placement.prefetch_lookahead = 8;
  auto monarch = Build(
      1 << 20,
      {{"b", "blocker-bytes"}, {"f2", "two"}, {"f3", "three"}, {"f4", "four"}},
      placement, /*num_threads=*/1, gate);
  ASSERT_OK(monarch);

  // The hint claims all four files; the single worker blocks inside the
  // first copy, so f2..f4 sit queued on the prefetch lane.
  const std::vector<std::string> order{"data/b", "data/f2", "data/f3",
                                       "data/f4"};
  monarch.value()->HintUpcoming(order);
  gate->AwaitBlocked();

  // Demand overtakes the queued hint for f3: the read is served from the
  // PFS now and the copy moves to the demand lane.
  EXPECT_EQ("three", ReadAll(**monarch, "data/f3", 5));
  auto stats = monarch.value()->Stats();
  EXPECT_EQ(1u, stats.placement.prefetch_promoted);
  EXPECT_EQ(1u, stats.pfs_reads());

  gate->ReleaseBlocked();
  monarch.value()->DrainPlacements();

  // The promoted copy ran before the remaining hints.
  const auto write_order = gate->write_order();
  ASSERT_EQ(4u, write_order.size());
  EXPECT_EQ("data/f3", write_order[1]);
  EXPECT_EQ("three", ReadAll(**monarch, "data/f3", 5));
  EXPECT_EQ(1u, monarch.value()->Stats().pfs_reads())
      << "after promotion completes, reads serve from the cache tier";
}

TEST_F(StagingPipelineMonarchTest, StopPlacementCancelsQueuedHints) {
  auto gate = std::make_shared<GateEngine>("data/b");
  PlacementOptions placement;
  placement.prefetch_lookahead = 8;
  auto monarch = Build(
      1 << 20,
      {{"b", "blocker-bytes"}, {"f2", "two"}, {"f3", "three"}, {"f4", "four"}},
      placement, /*num_threads=*/1, gate);
  ASSERT_OK(monarch);

  monarch.value()->HintUpcoming(
      std::vector<std::string>{"data/b", "data/f2", "data/f3", "data/f4"});
  gate->AwaitBlocked();

  monarch.value()->StopPlacement();
  gate->ReleaseBlocked();
  monarch.value()->DrainPlacements();

  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(3u, stats.placement.prefetch_cancelled)
      << "queued hints are dropped when placement stops";
  EXPECT_EQ(1u, stats.placement.completed)
      << "the in-flight copy runs to completion";
  // Cancelled files stay readable (from the PFS, placement being stopped).
  EXPECT_EQ("two", ReadAll(**monarch, "data/f2", 3));
  EXPECT_EQ("four", ReadAll(**monarch, "data/f4", 4));
}

TEST_F(StagingPipelineMonarchTest, HintIsNoOpWhenLookaheadDisabled) {
  auto monarch = Build(1 << 20, {{"f1", "one"}, {"f2", "two"}});
  ASSERT_OK(monarch);

  monarch.value()->HintUpcoming(
      std::vector<std::string>{"data/f1", "data/f2"});
  monarch.value()->DrainPlacements();

  const auto stats = monarch.value()->Stats();
  EXPECT_EQ(0u, stats.placement.prefetch_scheduled)
      << "prefetch_lookahead=0 disables the cursor entirely";
  EXPECT_EQ(0u, stats.placement.scheduled);
  EXPECT_EQ("one", ReadAll(**monarch, "data/f1", 3));
}

}  // namespace
}  // namespace monarch::core
