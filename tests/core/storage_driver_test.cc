#include "core/storage_driver.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "../test_support.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;

StorageDriver MakeDriver(std::uint64_t quota, bool read_only = false) {
  return StorageDriver("tier", std::make_shared<storage::MemoryEngine>(),
                       quota, read_only);
}

TEST(StorageDriverTest, ReserveWithinQuotaSucceeds) {
  auto driver = MakeDriver(100);
  EXPECT_TRUE(driver.Reserve(60));
  EXPECT_EQ(60u, driver.occupancy_bytes());
  EXPECT_EQ(40u, driver.free_bytes());
  EXPECT_TRUE(driver.Reserve(40));
  EXPECT_EQ(0u, driver.free_bytes());
}

TEST(StorageDriverTest, ReserveBeyondQuotaFails) {
  auto driver = MakeDriver(100);
  EXPECT_TRUE(driver.Reserve(80));
  EXPECT_FALSE(driver.Reserve(21));
  EXPECT_EQ(80u, driver.occupancy_bytes()) << "failed reserve must not leak";
  EXPECT_TRUE(driver.Reserve(20));
}

TEST(StorageDriverTest, ReleaseReturnsQuota) {
  auto driver = MakeDriver(100);
  ASSERT_TRUE(driver.Reserve(100));
  driver.Release(30);
  EXPECT_EQ(70u, driver.occupancy_bytes());
  EXPECT_TRUE(driver.Reserve(30));
}

TEST(StorageDriverTest, ZeroQuotaMeansUnlimited) {
  auto driver = MakeDriver(0);
  EXPECT_TRUE(driver.Reserve(1ULL << 40));
  EXPECT_EQ(UINT64_MAX, MakeDriver(0).free_bytes());
}

TEST(StorageDriverTest, ReadOnlyTierRefusesReserveAndWrite) {
  auto driver = MakeDriver(0, /*read_only=*/true);
  EXPECT_FALSE(driver.Reserve(1));
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     driver.Write("f", Bytes("x")));
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition, driver.Delete("f"));
}

TEST(StorageDriverTest, WriteReadDeletePassThrough) {
  auto driver = MakeDriver(1000);
  ASSERT_OK(driver.Write("f", Bytes("hello")));
  std::vector<std::byte> buf(5);
  auto read = driver.Read("f", 0, buf);
  ASSERT_OK(read);
  EXPECT_EQ(5u, read.value());
  ASSERT_OK(driver.Delete("f"));
  EXPECT_STATUS_CODE(StatusCode::kNotFound, driver.Read("f", 0, buf));
}

TEST(StorageDriverTest, ConcurrentReservesNeverOverflowQuota) {
  auto driver = MakeDriver(10000);
  std::atomic<std::uint64_t> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (driver.Reserve(7)) granted.fetch_add(7);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(granted.load(), driver.occupancy_bytes());
  EXPECT_LE(driver.occupancy_bytes(), 10000u);
  // 8000 attempts x 7 bytes = 56000 demanded; quota must be ~fully used.
  EXPECT_GE(driver.occupancy_bytes(), 10000u - 6);
}

TEST(StorageDriverTest, FreeBytesSaturatesAtZero) {
  auto driver = MakeDriver(10);
  ASSERT_TRUE(driver.Reserve(10));
  EXPECT_EQ(0u, driver.free_bytes());
}

}  // namespace
}  // namespace monarch::core
