#include "core/placement_handler.h"

#include <gtest/gtest.h>

#include <memory>

#include "../test_support.h"
#include "storage/faulty_engine.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;

class PlacementHandlerTest : public ::testing::Test {
 protected:
  void Build(std::vector<std::uint64_t> quotas,
             PlacementOptions options = {},
             storage::StorageEnginePtr pfs_engine = nullptr) {
    pfs_engine_ = pfs_engine ? std::move(pfs_engine)
                             : std::make_shared<storage::MemoryEngine>("pfs");
    std::vector<StorageDriverPtr> drivers;
    cache_engines_.clear();
    for (std::size_t i = 0; i < quotas.size(); ++i) {
      auto engine = std::make_shared<storage::MemoryEngine>(
          "tier" + std::to_string(i));
      cache_engines_.push_back(engine);
      drivers.push_back(std::make_unique<StorageDriver>(
          "tier" + std::to_string(i), engine, quotas[i], false));
    }
    drivers.push_back(
        std::make_unique<StorageDriver>("pfs", pfs_engine_, 0, true));
    hierarchy_ = std::move(StorageHierarchy::Create(std::move(drivers))).value();
    options.num_threads = 2;
    handler_ = std::make_unique<PlacementHandler>(
        *hierarchy_, metadata_, MakeFirstFitPolicy(), options);
  }

  /// Put a file on the simulated PFS and register it.
  FileInfoPtr AddPfsFile(const std::string& name, const std::string& data) {
    EXPECT_TRUE(pfs_engine_->Write(name, Bytes(data)).ok());
    metadata_.Register(name, data.size(), hierarchy_->pfs_level());
    return metadata_.Lookup(name);
  }

  storage::StorageEnginePtr pfs_engine_;
  std::vector<storage::StorageEnginePtr> cache_engines_;
  std::unique_ptr<StorageHierarchy> hierarchy_;
  MetadataContainer metadata_;
  std::unique_ptr<PlacementHandler> handler_;
};

TEST_F(PlacementHandlerTest, PlacesFileWithoutContent) {
  Build({100});
  auto file = AddPfsFile("f", "0123456789");
  ASSERT_TRUE(file->TryBeginFetch());
  handler_->SchedulePlacement(file, std::nullopt);
  handler_->Drain();

  EXPECT_EQ(PlacementState::kPlaced, file->state.load());
  EXPECT_EQ(0, file->level.load());
  EXPECT_EQ(10u, hierarchy_->Level(0).occupancy_bytes());

  // The staged copy really exists on the tier engine with exact bytes.
  std::vector<std::byte> buf(10);
  auto read = cache_engines_[0]->Read("f", 0, buf);
  ASSERT_OK(read);
  EXPECT_EQ("0123456789", monarch::testing::Text(buf));

  const auto stats = handler_->Stats();
  EXPECT_EQ(1u, stats.scheduled);
  EXPECT_EQ(1u, stats.completed);
  EXPECT_EQ(10u, stats.bytes_staged);
}

TEST_F(PlacementHandlerTest, UsesProvidedContentWithoutPfsRead) {
  Build({100});
  auto file = AddPfsFile("f", "abcdefgh");
  const auto before = pfs_engine_->Stats().Snapshot();

  ASSERT_TRUE(file->TryBeginFetch());
  handler_->SchedulePlacement(file, Bytes("abcdefgh"));
  handler_->Drain();

  EXPECT_EQ(PlacementState::kPlaced, file->state.load());
  const auto delta = pfs_engine_->Stats().Snapshot() - before;
  EXPECT_EQ(0u, delta.read_ops)
      << "content supplied by the read path must not trigger a PFS read";
}

TEST_F(PlacementHandlerTest, NoSpaceMarksUnplaceable) {
  Build({5});
  auto file = AddPfsFile("f", "too-big-for-tier");
  ASSERT_TRUE(file->TryBeginFetch());
  handler_->SchedulePlacement(file, std::nullopt);
  handler_->Drain();

  EXPECT_EQ(PlacementState::kUnplaceable, file->state.load());
  EXPECT_EQ(hierarchy_->pfs_level(), file->level.load());
  EXPECT_EQ(1u, handler_->Stats().rejected_no_space);
  EXPECT_EQ(0u, hierarchy_->Level(0).occupancy_bytes());
}

TEST_F(PlacementHandlerTest, SpillsToSecondTierWhenFirstFull) {
  Build({12, 100});
  auto f1 = AddPfsFile("f1", "0123456789");  // 10 bytes -> tier0
  auto f2 = AddPfsFile("f2", "0123456789");  // tier0 full -> tier1
  ASSERT_TRUE(f1->TryBeginFetch());
  ASSERT_TRUE(f2->TryBeginFetch());
  handler_->SchedulePlacement(f1, std::nullopt);
  handler_->Drain();
  handler_->SchedulePlacement(f2, std::nullopt);
  handler_->Drain();

  EXPECT_EQ(0, f1->level.load());
  EXPECT_EQ(1, f2->level.load());
}

TEST_F(PlacementHandlerTest, PfsReadFailureReleasesReservationAndRetries) {
  auto inner = std::make_shared<storage::MemoryEngine>("pfs");
  auto faulty =
      std::make_shared<storage::FaultyEngine>(inner, storage::FaultyEngine::FaultSpec{});
  Build({100}, {}, faulty);
  auto file = AddPfsFile("f", "0123456789");

  // A single transient failure is absorbed by the driver's retry layer
  // (core/resilience.h) and staging succeeds on the spot; to make the
  // placement itself fail the fault has to outlast the attempt budget.
  faulty->FailNextReads(100);
  ASSERT_TRUE(file->TryBeginFetch());
  handler_->SchedulePlacement(file, std::nullopt);
  handler_->Drain();

  EXPECT_EQ(PlacementState::kPfsOnly, file->state.load())
      << "transient failure must return the file to the retryable state";
  EXPECT_EQ(0u, hierarchy_->Level(0).occupancy_bytes())
      << "failed placement must release its reservation";
  EXPECT_EQ(1u, handler_->Stats().failed);
  EXPECT_EQ(1u, handler_->Stats().retries);

  // A later attempt succeeds once the fault clears.
  faulty->FailNextReads(0);
  ASSERT_TRUE(file->TryBeginFetch());
  handler_->SchedulePlacement(file, std::nullopt);
  handler_->Drain();
  EXPECT_EQ(PlacementState::kPlaced, file->state.load());
}

TEST_F(PlacementHandlerTest, StopSchedulingAbortsNewPlacements) {
  Build({100});
  auto file = AddPfsFile("f", "abc");
  handler_->StopScheduling();
  ASSERT_TRUE(file->TryBeginFetch());
  handler_->SchedulePlacement(file, std::nullopt);
  handler_->Drain();
  EXPECT_EQ(PlacementState::kPfsOnly, file->state.load());
  EXPECT_EQ(0u, handler_->Stats().scheduled);
}

TEST_F(PlacementHandlerTest, ManyFilesAllPlacedConcurrently) {
  Build({100000});
  std::vector<FileInfoPtr> files;
  for (int i = 0; i < 50; ++i) {
    auto file =
        AddPfsFile("f" + std::to_string(i), std::string(100, 'a' + i % 26));
    ASSERT_TRUE(file->TryBeginFetch());
    handler_->SchedulePlacement(file, std::nullopt);
    files.push_back(std::move(file));
  }
  handler_->Drain();
  for (const auto& file : files) {
    EXPECT_EQ(PlacementState::kPlaced, file->state.load()) << file->name;
  }
  EXPECT_EQ(50u * 100, hierarchy_->Level(0).occupancy_bytes());
  EXPECT_EQ(50u, handler_->Stats().completed);
}

TEST_F(PlacementHandlerTest, EvictionDisabledByDefault) {
  Build({15});
  auto f1 = AddPfsFile("f1", "0123456789");
  ASSERT_TRUE(f1->TryBeginFetch());
  handler_->SchedulePlacement(f1, std::nullopt);
  handler_->Drain();
  ASSERT_EQ(PlacementState::kPlaced, f1->state.load());

  auto f2 = AddPfsFile("f2", "0123456789");
  ASSERT_TRUE(f2->TryBeginFetch());
  handler_->SchedulePlacement(f2, std::nullopt);
  handler_->Drain();

  // The paper's no-eviction policy: f1 stays, f2 is unplaceable.
  EXPECT_EQ(PlacementState::kPlaced, f1->state.load());
  EXPECT_EQ(PlacementState::kUnplaceable, f2->state.load());
  EXPECT_EQ(0u, handler_->Stats().evictions);
}

TEST_F(PlacementHandlerTest, EvictionModeMakesRoomLru) {
  PlacementOptions options;
  options.enable_eviction = true;
  Build({15}, options);

  auto f1 = AddPfsFile("f1", "0123456789");
  f1->last_access.store(1);
  ASSERT_TRUE(f1->TryBeginFetch());
  handler_->SchedulePlacement(f1, std::nullopt);
  handler_->Drain();
  ASSERT_EQ(PlacementState::kPlaced, f1->state.load());

  auto f2 = AddPfsFile("f2", "0123456789");
  f2->last_access.store(2);
  ASSERT_TRUE(f2->TryBeginFetch());
  handler_->SchedulePlacement(f2, std::nullopt);
  handler_->Drain();

  // f1 (older access) was evicted to admit f2.
  EXPECT_EQ(PlacementState::kPlaced, f2->state.load());
  EXPECT_EQ(0, f2->level.load());
  EXPECT_EQ(PlacementState::kPfsOnly, f1->state.load());
  EXPECT_EQ(hierarchy_->pfs_level(), f1->level.load());
  EXPECT_EQ(1u, handler_->Stats().evictions);
  EXPECT_EQ(10u, hierarchy_->Level(0).occupancy_bytes());
}

}  // namespace
}  // namespace monarch::core
