// End-to-end: the TFRecord reader streaming through MonarchSource — the
// exact composition the paper's TensorFlow integration creates (record
// reader on top of Monarch.read instead of pread).
#include "core/monarch_source.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "../test_support.h"
#include "storage/memory_engine.h"
#include "tfrecord/reader.h"
#include "tfrecord/writer.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

class MonarchSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pfs_ = std::make_shared<storage::MemoryEngine>("pfs");
    local_ = std::make_shared<storage::MemoryEngine>("local");

    // A real TFRecord file on the PFS.
    tfrecord::TFRecordWriter writer;
    for (int i = 0; i < 50; ++i) {
      writer.Append(Bytes("record-" + std::to_string(i)));
    }
    ASSERT_OK(writer.Flush(*pfs_, "data/train.tfrecord"));

    MonarchConfig config;
    config.cache_tiers.push_back(TierSpec{"local", local_, 1ULL << 20});
    config.pfs = TierSpec{"pfs", pfs_, 0};
    config.dataset_dir = "data";
    config.placement.num_threads = 2;
    auto monarch = Monarch::Create(std::move(config));
    ASSERT_OK(monarch);
    monarch_ = std::move(monarch).value();
  }

  void ReadAllRecords(std::size_t chunk_bytes) {
    MonarchSource source(*monarch_, "data/train.tfrecord");
    tfrecord::TFRecordReader reader(source, {.buffer_bytes = chunk_bytes});
    for (int i = 0; i < 50; ++i) {
      auto record = reader.ReadRecord();
      ASSERT_OK(record);
      EXPECT_EQ("record-" + std::to_string(i), Text(record.value()));
    }
    EXPECT_STATUS_CODE(StatusCode::kOutOfRange, reader.ReadRecord());
  }

  std::shared_ptr<storage::MemoryEngine> pfs_;
  std::shared_ptr<storage::MemoryEngine> local_;
  std::unique_ptr<Monarch> monarch_;
};

TEST_F(MonarchSourceTest, StreamsRecordsAndTriggersStaging) {
  ReadAllRecords(/*chunk_bytes=*/256);  // many partial reads
  monarch_->DrainPlacements();
  // The partial reads staged the WHOLE record file.
  EXPECT_EQ(1u, monarch_->Stats().placement.completed);
  EXPECT_TRUE(local_->Exists("data/train.tfrecord").value());
}

TEST_F(MonarchSourceTest, SecondEpochIdenticalFromLocalTier) {
  ReadAllRecords(256);
  monarch_->DrainPlacements();
  const auto pfs_reads_after_e1 = pfs_->Stats().Snapshot().read_ops;
  ReadAllRecords(256);  // must decode identically from the local copy
  EXPECT_EQ(pfs_reads_after_e1, pfs_->Stats().Snapshot().read_ops)
      << "epoch 2 must not touch the PFS";
}

TEST_F(MonarchSourceTest, SizeMatchesNamespace) {
  MonarchSource source(*monarch_, "data/train.tfrecord");
  EXPECT_EQ(pfs_->FileSize("data/train.tfrecord").value(),
            source.Size().value());
  EXPECT_EQ("data/train.tfrecord", source.Name());
}

TEST_F(MonarchSourceTest, CorrectWhileStagingRacesReads) {
  // Stream the file repeatedly from several threads while the background
  // placement flips its serving tier mid-stream; every record must still
  // decode exactly (the tier switch must never tear a read).
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, &ok] {
      for (int pass = 0; pass < 5; ++pass) {
        MonarchSource source(*monarch_, "data/train.tfrecord");
        tfrecord::TFRecordReader reader(source, {.buffer_bytes = 128});
        for (int i = 0; i < 50; ++i) {
          auto record = reader.ReadRecord();
          if (!record.ok() ||
              Text(record.value()) != "record-" + std::to_string(i)) {
            ok.store(false);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  monarch_->DrainPlacements();
  EXPECT_EQ(1u, monarch_->Stats().placement.completed);
}

TEST_F(MonarchSourceTest, MissingFileSurfacesNotFound) {
  MonarchSource source(*monarch_, "data/ghost.tfrecord");
  std::vector<std::byte> buf(16);
  EXPECT_STATUS_CODE(StatusCode::kNotFound, source.ReadAt(0, buf));
  EXPECT_STATUS_CODE(StatusCode::kNotFound, source.Size());
}

}  // namespace
}  // namespace monarch::core
