#include "core/storage_hierarchy.h"

#include <gtest/gtest.h>

#include <memory>

#include "../test_support.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

StorageDriverPtr Driver(const std::string& name, std::uint64_t quota,
                        bool read_only) {
  return std::make_unique<StorageDriver>(
      name, std::make_shared<storage::MemoryEngine>(name), quota, read_only);
}

TEST(StorageHierarchyTest, CreateValidTwoLevel) {
  std::vector<StorageDriverPtr> drivers;
  drivers.push_back(Driver("ssd", 100, false));
  drivers.push_back(Driver("pfs", 0, true));
  auto hierarchy = StorageHierarchy::Create(std::move(drivers));
  ASSERT_OK(hierarchy);
  EXPECT_EQ(2u, hierarchy.value()->num_levels());
  EXPECT_EQ(1, hierarchy.value()->pfs_level());
  EXPECT_EQ("ssd", hierarchy.value()->Level(0).name());
  EXPECT_EQ("pfs", hierarchy.value()->Pfs().name());
}

TEST(StorageHierarchyTest, RejectsSingleLevel) {
  std::vector<StorageDriverPtr> drivers;
  drivers.push_back(Driver("pfs", 0, true));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     StorageHierarchy::Create(std::move(drivers)));
}

TEST(StorageHierarchyTest, RejectsWritableLastLevel) {
  std::vector<StorageDriverPtr> drivers;
  drivers.push_back(Driver("ssd", 100, false));
  drivers.push_back(Driver("pfs", 0, false));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     StorageHierarchy::Create(std::move(drivers)));
}

TEST(StorageHierarchyTest, RejectsReadOnlyCacheTier) {
  std::vector<StorageDriverPtr> drivers;
  drivers.push_back(Driver("frozen", 100, true));
  drivers.push_back(Driver("pfs", 0, true));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     StorageHierarchy::Create(std::move(drivers)));
}

TEST(StorageHierarchyTest, ThreeLevelHierarchy) {
  // The §VI "more storage layers" shape: RAM + SSD + PFS.
  std::vector<StorageDriverPtr> drivers;
  drivers.push_back(Driver("ram", 50, false));
  drivers.push_back(Driver("ssd", 100, false));
  drivers.push_back(Driver("pfs", 0, true));
  auto hierarchy = StorageHierarchy::Create(std::move(drivers));
  ASSERT_OK(hierarchy);
  EXPECT_EQ(3u, hierarchy.value()->num_levels());
  EXPECT_EQ(2, hierarchy.value()->pfs_level());
}

TEST(StorageHierarchyTest, AcceptsPeerLevelAbovePfs) {
  // ISSUE 4 shape: local cache, read-only peer tier, PFS.
  std::vector<StorageDriverPtr> drivers;
  drivers.push_back(Driver("ssd", 100, false));
  drivers.push_back(Driver("peer", 0, true));
  drivers.push_back(Driver("pfs", 0, true));
  auto hierarchy = StorageHierarchy::Create(std::move(drivers));
  ASSERT_OK(hierarchy);
  EXPECT_EQ(3u, hierarchy.value()->num_levels());
  EXPECT_EQ(2, hierarchy.value()->pfs_level());
  EXPECT_EQ(1, hierarchy.value()->peer_level());
}

TEST(StorageHierarchyTest, PeerLevelAbsentByDefault) {
  std::vector<StorageDriverPtr> drivers;
  drivers.push_back(Driver("ssd", 100, false));
  drivers.push_back(Driver("pfs", 0, true));
  auto hierarchy = StorageHierarchy::Create(std::move(drivers));
  ASSERT_OK(hierarchy);
  EXPECT_EQ(-1, hierarchy.value()->peer_level());
}

TEST(StorageHierarchyTest, RejectsPeerLevelWithoutWritableTier) {
  // A peer tier may not stand in for the mandatory writable cache level.
  std::vector<StorageDriverPtr> drivers;
  drivers.push_back(Driver("peer", 0, true));
  drivers.push_back(Driver("pfs", 0, true));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     StorageHierarchy::Create(std::move(drivers)));
}

TEST(StorageHierarchyTest, RejectsReadOnlyLevelBelowPeerSlot) {
  // Read-only is only legal directly above the PFS, nowhere lower.
  std::vector<StorageDriverPtr> drivers;
  drivers.push_back(Driver("frozen", 0, true));
  drivers.push_back(Driver("ssd", 100, false));
  drivers.push_back(Driver("pfs", 0, true));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     StorageHierarchy::Create(std::move(drivers)));
}

TEST(StorageHierarchyTest, TotalWritableFreeBytesSkipsPeerLevel) {
  std::vector<StorageDriverPtr> drivers;
  drivers.push_back(Driver("ssd", 100, false));
  drivers.push_back(Driver("peer", 0, true));
  drivers.push_back(Driver("pfs", 0, true));
  auto hierarchy = StorageHierarchy::Create(std::move(drivers));
  ASSERT_OK(hierarchy);
  EXPECT_EQ(100u, hierarchy.value()->TotalWritableFreeBytes());
}

TEST(StorageHierarchyTest, TotalWritableFreeBytesExcludesPfs) {
  std::vector<StorageDriverPtr> drivers;
  drivers.push_back(Driver("ram", 50, false));
  drivers.push_back(Driver("ssd", 100, false));
  drivers.push_back(Driver("pfs", 0, true));
  auto hierarchy = StorageHierarchy::Create(std::move(drivers));
  ASSERT_OK(hierarchy);
  EXPECT_EQ(150u, hierarchy.value()->TotalWritableFreeBytes());
  hierarchy.value()->Level(0).Reserve(20);
  EXPECT_EQ(130u, hierarchy.value()->TotalWritableFreeBytes());
}

}  // namespace
}  // namespace monarch::core
