#include "core/tier_health.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/clock.h"

namespace monarch::core {
namespace {

TierHealthOptions FastOptions() {
  TierHealthOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.error_threshold = 0.5;
  options.cooldown = Millis(5);
  options.half_open_successes = 2;
  return options;
}

TEST(TierHealthTest, StartsClosedAndAdmitsEverything) {
  TierHealth health("t", FastOptions());
  EXPECT_EQ(CircuitState::kClosed, health.state());
  EXPECT_TRUE(health.AllowRequest());
  EXPECT_EQ(0u, health.circuit_opens());
  EXPECT_EQ(0.0, health.error_rate());
}

TEST(TierHealthTest, HealthyTrafficNeverOpens) {
  TierHealth health("t", FastOptions());
  for (int i = 0; i < 100; ++i) health.RecordSuccess();
  EXPECT_EQ(CircuitState::kClosed, health.state());
  EXPECT_TRUE(health.AllowRequest());
}

TEST(TierHealthTest, OpensWhenErrorRateCrossesThreshold) {
  TierHealth health("t", FastOptions());
  for (int i = 0; i < 8; ++i) health.RecordFailure();
  EXPECT_EQ(CircuitState::kOpen, health.state());
  EXPECT_FALSE(health.AllowRequest());
  EXPECT_EQ(1u, health.circuit_opens());
  EXPECT_GE(health.error_rate(), 0.5);
}

TEST(TierHealthTest, FewSamplesAreNotJudged) {
  TierHealthOptions options = FastOptions();
  options.min_samples = 6;
  TierHealth health("t", options);
  // 5 failures < min_samples: all failures but no verdict yet.
  for (int i = 0; i < 5; ++i) health.RecordFailure();
  EXPECT_EQ(CircuitState::kClosed, health.state());
}

TEST(TierHealthTest, CooldownHalfOpensThenClosesOnProbeSuccesses) {
  TierHealth health("t", FastOptions());
  for (int i = 0; i < 8; ++i) health.RecordFailure();
  ASSERT_EQ(CircuitState::kOpen, health.state());
  EXPECT_FALSE(health.AllowRequest());

  PreciseSleep(Millis(8));  // > cooldown
  EXPECT_TRUE(health.AllowRequest());  // first caller flips to half-open
  EXPECT_EQ(CircuitState::kHalfOpen, health.state());

  health.RecordSuccess();
  EXPECT_EQ(CircuitState::kHalfOpen, health.state());
  health.RecordSuccess();  // half_open_successes = 2
  EXPECT_EQ(CircuitState::kClosed, health.state());
  EXPECT_TRUE(health.AllowRequest());
  // Closing resets the window: the old failures don't linger.
  EXPECT_EQ(0.0, health.error_rate());
  EXPECT_EQ(1u, health.circuit_opens());
}

TEST(TierHealthTest, ProbeFailureReopensImmediately) {
  TierHealth health("t", FastOptions());
  for (int i = 0; i < 8; ++i) health.RecordFailure();
  PreciseSleep(Millis(8));
  ASSERT_TRUE(health.AllowRequest());
  ASSERT_EQ(CircuitState::kHalfOpen, health.state());

  health.RecordFailure();
  EXPECT_EQ(CircuitState::kOpen, health.state());
  EXPECT_EQ(2u, health.circuit_opens());
  EXPECT_FALSE(health.AllowRequest());
}

TEST(TierHealthTest, DisabledTrackerNeverOpens) {
  TierHealthOptions options = FastOptions();
  options.enabled = false;
  TierHealth health("t", options);
  for (int i = 0; i < 100; ++i) health.RecordFailure();
  EXPECT_EQ(CircuitState::kClosed, health.state());
  EXPECT_TRUE(health.AllowRequest());
  EXPECT_EQ(0u, health.circuit_opens());
}

TEST(TierHealthTest, StateNamesAreStable) {
  EXPECT_STREQ("closed", CircuitStateName(CircuitState::kClosed));
  EXPECT_STREQ("half-open", CircuitStateName(CircuitState::kHalfOpen));
  EXPECT_STREQ("open", CircuitStateName(CircuitState::kOpen));
}

// The TSan-leg test: hammer the tracker from many threads through the
// whole open -> half-open -> close cycle and require it to land closed.
TEST(TierHealthTest, ConcurrentLifecycleReachesClosed) {
  TierHealthOptions options;
  options.window = 64;
  options.min_samples = 16;
  options.error_threshold = 0.5;
  options.cooldown = Millis(2);
  options.half_open_successes = 3;
  TierHealth health("t", options);

  // Phase 1: concurrent failures must trip the breaker exactly open.
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&health] {
        for (int i = 0; i < 200; ++i) {
          if (health.AllowRequest()) health.RecordFailure();
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(CircuitState::kOpen, health.state());
  EXPECT_GE(health.circuit_opens(), 1u);

  // Phase 2: after the cooldown, concurrent successful probes must close
  // it again — no thread may wedge the state machine half-open forever.
  PreciseSleep(Millis(5));
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&health] {
        for (int i = 0; i < 200; ++i) {
          if (health.AllowRequest()) health.RecordSuccess();
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(CircuitState::kClosed, health.state());
  EXPECT_TRUE(health.AllowRequest());
}

}  // namespace
}  // namespace monarch::core
