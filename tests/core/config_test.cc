#include "core/config.h"

#include <gtest/gtest.h>

#include "../test_support.h"
#include "util/byte_units.h"
#include "workload/dataset_generator.h"
#include "storage/posix_engine.h"

namespace monarch::core {
namespace {

using monarch::testing::TempDir;
using namespace monarch::literals;

constexpr const char* kValidIni = R"(
; MONARCH experiment configuration
[monarch]
dataset_dir = imagenet_100g
placement_threads = 6
fetch_full_file = true

[tier.0]
name = local-ssd
profile = ssd
root = /tmp/unused/ssd
quota = 115MiB

[pfs]
name = lustre
profile = lustre
root = /tmp/unused/pfs
seed = 42
)";

TEST(ParseConfigTest, ParsesValidIni) {
  auto parsed = ParseConfig(kValidIni);
  ASSERT_OK(parsed);
  EXPECT_EQ("imagenet_100g", parsed.value().dataset_dir);
  EXPECT_EQ(6, parsed.value().placement_threads);
  EXPECT_TRUE(parsed.value().fetch_full_file);
  ASSERT_EQ(1u, parsed.value().cache_tiers.size());
  EXPECT_EQ("local-ssd", parsed.value().cache_tiers[0].name);
  EXPECT_EQ("ssd", parsed.value().cache_tiers[0].profile);
  EXPECT_EQ(115_MiB, parsed.value().cache_tiers[0].quota_bytes);
  EXPECT_EQ("lustre", parsed.value().pfs.profile);
  EXPECT_EQ(42u, parsed.value().pfs.seed);
}

TEST(ParseConfigTest, CommentsAndWhitespaceIgnored) {
  auto parsed = ParseConfig(
      "[monarch]\n"
      "  dataset_dir = d   # trailing comment\n"
      "[tier.0]\n"
      "profile=ram\n"
      "quota = 1KiB\n"
      "[pfs]\n"
      "profile = raw\n"
      "root = /tmp/x\n");
  ASSERT_OK(parsed);
  EXPECT_EQ("d", parsed.value().dataset_dir);
  EXPECT_EQ(1024u, parsed.value().cache_tiers[0].quota_bytes);
}

TEST(ParseConfigTest, MultiTierOutOfOrderSectionsSort) {
  auto parsed = ParseConfig(
      "[tier.1]\nprofile=ssd\nroot=/b\nquota=2KiB\n"
      "[monarch]\ndataset_dir=d\n"
      "[tier.0]\nprofile=ram\nquota=1KiB\n"
      "[pfs]\nprofile=raw\nroot=/p\n");
  ASSERT_OK(parsed);
  ASSERT_EQ(2u, parsed.value().cache_tiers.size());
  EXPECT_EQ("ram", parsed.value().cache_tiers[0].profile);
  EXPECT_EQ("ssd", parsed.value().cache_tiers[1].profile);
}

TEST(ParseConfigTest, RejectsUnknownKeysAndSections) {
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig("[monarch]\ndataset_dir=d\ntypo_key=1\n"
                  "[tier.0]\nprofile=ram\nquota=1KiB\n[pfs]\nprofile=raw\nroot=/p\n"));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     ParseConfig("[mystery]\nx=1\n"));
}

TEST(ParseConfigTest, RejectsStructuralErrors) {
  // No PFS.
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig("[monarch]\ndataset_dir=d\n[tier.0]\nprofile=ram\nquota=1KiB\n"));
  // No tiers.
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig("[monarch]\ndataset_dir=d\n[pfs]\nprofile=raw\nroot=/p\n"));
  // Non-contiguous tier indices.
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig("[monarch]\ndataset_dir=d\n[tier.1]\nprofile=ram\nquota=1\n"
                  "[pfs]\nprofile=raw\nroot=/p\n"));
  // Missing dataset_dir.
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig("[tier.0]\nprofile=ram\nquota=1\n[pfs]\nprofile=raw\nroot=/p\n"));
  // Key outside a section.
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     ParseConfig("dataset_dir=d\n"));
  // Unterminated section.
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument, ParseConfig("[monarch\n"));
  // Bad boolean / quota.
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig("[monarch]\ndataset_dir=d\nfetch_full_file=maybe\n"
                  "[tier.0]\nprofile=ram\nquota=1\n[pfs]\nprofile=raw\nroot=/p\n"));
}

TEST(ParseConfigTest, PeerSectionDisabledByDefault) {
  auto parsed = ParseConfig(kValidIni);
  ASSERT_OK(parsed);
  EXPECT_FALSE(parsed.value().peer.enabled);
  EXPECT_EQ(1'200'000'000u, parsed.value().peer.interconnect_bandwidth_bps);
  EXPECT_EQ(150u, parsed.value().peer.interconnect_latency_us);
  EXPECT_EQ(16u, parsed.value().peer.directory_shards);
  EXPECT_EQ(1, parsed.value().peer.replication);
}

TEST(ParseConfigTest, ParsesPeerSection) {
  auto parsed = ParseConfig(
      "[monarch]\ndataset_dir=d\n"
      "[tier.0]\nprofile=ram\nquota=1KiB\n"
      "[pfs]\nprofile=raw\nroot=/p\n"
      "[peer]\n"
      "enabled = true\n"
      "interconnect_bandwidth = 2GiB\n"
      "interconnect_latency_us = 80\n"
      "directory_shards = 32\n"
      "replication = 2\n");
  ASSERT_OK(parsed);
  EXPECT_TRUE(parsed.value().peer.enabled);
  EXPECT_EQ(2_GiB, parsed.value().peer.interconnect_bandwidth_bps);
  EXPECT_EQ(80u, parsed.value().peer.interconnect_latency_us);
  EXPECT_EQ(32u, parsed.value().peer.directory_shards);
  EXPECT_EQ(2, parsed.value().peer.replication);
}

TEST(ParseConfigTest, RejectsBadPeerKeys) {
  constexpr const char* kBase =
      "[monarch]\ndataset_dir=d\n[tier.0]\nprofile=ram\nquota=1KiB\n"
      "[pfs]\nprofile=raw\nroot=/p\n";
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     ParseConfig(std::string(kBase) + "[peer]\ntypo=1\n"));
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig(std::string(kBase) + "[peer]\nreplication=0\n"));
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig(std::string(kBase) + "[peer]\nenabled=maybe\n"));
}

TEST(ParseConfigTest, CheckpointSectionDisabledByDefault) {
  auto parsed = ParseConfig(
      "[monarch]\ndataset_dir=d\n[tier.0]\nprofile=ram\nquota=1KiB\n"
      "[pfs]\nprofile=raw\nroot=/p\n");
  ASSERT_OK(parsed);
  EXPECT_FALSE(parsed.value().checkpoint.enabled);
  EXPECT_EQ("ckpt", parsed.value().checkpoint.dir);
  EXPECT_EQ(0, parsed.value().checkpoint.keep_last);
  EXPECT_EQ(0u, parsed.value().checkpoint.drain_bandwidth_bytes_per_sec);
  EXPECT_EQ(1, parsed.value().checkpoint.drain_threads);
  EXPECT_TRUE(parsed.value().checkpoint.verify_on_restore);
}

TEST(ParseConfigTest, ParsesCheckpointSection) {
  auto parsed = ParseConfig(
      "[monarch]\ndataset_dir=d\n[tier.0]\nprofile=ram\nquota=1KiB\n"
      "[pfs]\nprofile=raw\nroot=/p\n"
      "[checkpoint]\n"
      "enabled = true\n"
      "dir = checkpoints\n"
      "keep_last = 3\n"
      "drain_bandwidth = 200MiB\n"
      "drain_threads = 2\n"
      "verify_on_restore = false\n");
  ASSERT_OK(parsed);
  EXPECT_TRUE(parsed.value().checkpoint.enabled);
  EXPECT_EQ("checkpoints", parsed.value().checkpoint.dir);
  EXPECT_EQ(3, parsed.value().checkpoint.keep_last);
  EXPECT_EQ(200ull << 20,
            parsed.value().checkpoint.drain_bandwidth_bytes_per_sec);
  EXPECT_EQ(2, parsed.value().checkpoint.drain_threads);
  EXPECT_FALSE(parsed.value().checkpoint.verify_on_restore);
}

TEST(ParseConfigTest, RejectsBadCheckpointKeys) {
  constexpr const char* kBase =
      "[monarch]\ndataset_dir=d\n[tier.0]\nprofile=ram\nquota=1KiB\n"
      "[pfs]\nprofile=raw\nroot=/p\n";
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig(std::string(kBase) + "[checkpoint]\ntypo=1\n"));
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig(std::string(kBase) + "[checkpoint]\ndrain_threads=0\n"));
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig(std::string(kBase) + "[checkpoint]\ndir=\n"));
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      ParseConfig(std::string(kBase) + "[checkpoint]\nenabled=maybe\n"));
}

TEST(BuildMonarchConfigTest, UnknownProfileRejected) {
  ParsedConfig parsed;
  parsed.dataset_dir = "d";
  parsed.cache_tiers.push_back({"t", "floppy", "/tmp/x", 1024, 1});
  parsed.pfs = {"p", "raw", "/tmp/y", 0, 1};
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     BuildMonarchConfig(parsed));
}

TEST(BuildMonarchConfigTest, SsdWithoutRootRejected) {
  ParsedConfig parsed;
  parsed.dataset_dir = "d";
  parsed.cache_tiers.push_back({"t", "ssd", "", 1024, 1});
  parsed.pfs = {"p", "raw", "/tmp/y", 0, 1};
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     BuildMonarchConfig(parsed));
}

TEST(MonarchFromIniTest, EndToEndOverRealDirectories) {
  TempDir dir("config_e2e");
  // Stage a tiny dataset on the "PFS" directory.
  storage::PosixEngine staging(dir.Sub("pfs"));
  auto spec = workload::DatasetSpec::Tiny();
  ASSERT_OK(workload::GenerateDataset(staging, spec));

  const std::string ini =
      "[monarch]\ndataset_dir = " + spec.directory + "\n"
      "placement_threads = 2\n"
      "[tier.0]\nname = ram-cache\nprofile = ram\nquota = 10MiB\n"
      "[pfs]\nname = quiet-pfs\nprofile = lustre-quiet\nroot = " +
      dir.Sub("pfs").string() + "\n";

  auto monarch = MonarchFromIni(ini);
  ASSERT_OK(monarch);
  EXPECT_EQ(spec.num_files, monarch.value()->Stats().files_indexed);

  // Read a file through the configured stack.
  const std::string path = workload::RecordFilePath(spec, 0);
  std::vector<std::byte> buf(64);
  ASSERT_OK(monarch.value()->Read(path, 0, buf));
  monarch.value()->DrainPlacements();
  EXPECT_EQ(1u, monarch.value()->Stats().placement.completed);
}

}  // namespace
}  // namespace monarch::core
