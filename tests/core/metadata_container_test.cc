#include "core/metadata_container.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "../test_support.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;

TEST(MetadataContainerTest, StartsEmpty) {
  MetadataContainer container;
  EXPECT_EQ(0u, container.FileCount());
  EXPECT_EQ(0u, container.TotalBytes());
  EXPECT_EQ(nullptr, container.Lookup("x"));
  EXPECT_FALSE(container.Contains("x"));
}

TEST(MetadataContainerTest, RegisterAndLookup) {
  MetadataContainer container;
  EXPECT_TRUE(container.Register("dataset/f1", 100, /*pfs_level=*/1));
  EXPECT_FALSE(container.Register("dataset/f1", 100, 1)) << "no duplicates";

  auto info = container.Lookup("dataset/f1");
  ASSERT_NE(nullptr, info);
  EXPECT_EQ("dataset/f1", info->name);
  EXPECT_EQ(100u, info->size);
  EXPECT_EQ(1, info->level.load());
  EXPECT_EQ(PlacementState::kPfsOnly, info->state.load());
  EXPECT_EQ(1u, container.FileCount());
  EXPECT_EQ(100u, container.TotalBytes());
}

TEST(MetadataContainerTest, PopulateWalksDatasetDirectory) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  ASSERT_OK(engine->Write("data/f1", Bytes("11")));
  ASSERT_OK(engine->Write("data/f2", Bytes("2222")));
  ASSERT_OK(engine->Write("elsewhere/f3", Bytes("x")));

  MetadataContainer container;
  auto count = container.Populate(*engine, "data", /*pfs_level=*/1);
  ASSERT_OK(count);
  EXPECT_EQ(2u, count.value());
  EXPECT_EQ(2u, container.FileCount());
  EXPECT_EQ(6u, container.TotalBytes());
  EXPECT_TRUE(container.Contains("data/f1"));
  EXPECT_FALSE(container.Contains("elsewhere/f3"));
  EXPECT_GE(container.init_seconds(), 0.0);
}

TEST(MetadataContainerTest, PopulateMissingDirFails) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  MetadataContainer container;
  EXPECT_STATUS_CODE(StatusCode::kNotFound,
                     container.Populate(*engine, "absent", 1));
}

TEST(MetadataContainerTest, SnapshotIsSortedAndComplete) {
  MetadataContainer container;
  container.Register("c", 3, 1);
  container.Register("a", 1, 1);
  container.Register("b", 2, 1);
  const auto snapshot = container.Snapshot();
  ASSERT_EQ(3u, snapshot.size());
  EXPECT_EQ("a", snapshot[0].name);
  EXPECT_EQ("b", snapshot[1].name);
  EXPECT_EQ("c", snapshot[2].name);
  EXPECT_EQ(2u, snapshot[1].size);
  EXPECT_EQ(PlacementState::kPfsOnly, snapshot[0].state);
}

TEST(FileInfoTest, FetchStateMachine) {
  FileInfo info("f", 10, /*pfs_level=*/1);
  EXPECT_TRUE(info.TryBeginFetch());
  EXPECT_FALSE(info.TryBeginFetch()) << "second claim must fail";
  EXPECT_EQ(PlacementState::kFetching, info.state.load());

  info.FinishFetch(0);
  EXPECT_EQ(0, info.level.load());
  EXPECT_EQ(PlacementState::kPlaced, info.state.load());
  EXPECT_FALSE(info.TryBeginFetch()) << "placed files are never re-fetched";
}

TEST(FileInfoTest, AbortFetchRestoresOrPoisons) {
  FileInfo transient("f", 10, 1);
  ASSERT_TRUE(transient.TryBeginFetch());
  transient.AbortFetch(/*permanently=*/false);
  EXPECT_EQ(PlacementState::kPfsOnly, transient.state.load());
  EXPECT_TRUE(transient.TryBeginFetch()) << "retry after transient failure";

  FileInfo permanent("g", 10, 1);
  ASSERT_TRUE(permanent.TryBeginFetch());
  permanent.AbortFetch(/*permanently=*/true);
  EXPECT_EQ(PlacementState::kUnplaceable, permanent.state.load());
  EXPECT_FALSE(permanent.TryBeginFetch()) << "no retry once unplaceable";
}

TEST(FileInfoTest, ConcurrentClaimGrantsExactlyOne) {
  for (int round = 0; round < 50; ++round) {
    FileInfo info("f", 10, 1);
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        if (info.TryBeginFetch()) winners.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(1, winners.load());
  }
}

TEST(MetadataContainerTest, ConcurrentRegisterAndLookup) {
  MetadataContainer container;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&container, t] {
      for (int i = 0; i < 1000; ++i) {
        container.Register("f" + std::to_string(t) + "_" + std::to_string(i),
                           1, 1);
        container.Lookup("f0_" + std::to_string(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(4000u, container.FileCount());
  EXPECT_EQ(4000u, container.TotalBytes());
}

}  // namespace
}  // namespace monarch::core
