// ReadRing / ReadLease tests (ISSUE 8): batch submit + harvest, callback
// delivery, shutdown cancellation, lease pins vs eviction and teardown,
// the degradation ladder under async ops, zero-copy/copy byte equality
// (CRC-checked), and a TSan stress mixing ring readers with placement
// and eviction.
#include "core/read_ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "../test_support.h"
#include "core/monarch.h"
#include "core/read_lease.h"
#include "storage/memory_engine.h"
#include "util/crc32c.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

/// Engine whose reads of one gated path block until released — lets a
/// test hold a ring worker mid-op deterministically. Wraps a
/// MemoryEngine (which is final) and delegates everything else.
class GateEngine final : public storage::StorageEngine {
 public:
  explicit GateEngine(std::string gated_path)
      : inner_("gate"), gated_path_(std::move(gated_path)) {}

  Result<std::size_t> Read(std::string_view path, std::uint64_t offset,
                           std::span<std::byte> dst) override {
    MaybeBlock(path);
    return inner_.Read(path, offset, dst);
  }

  Result<storage::ReadView> ReadZeroCopy(std::string_view path,
                                         std::uint64_t offset,
                                         std::uint64_t max_bytes) override {
    MaybeBlock(path);
    return inner_.ReadZeroCopy(path, offset, max_bytes);
  }

  Status Write(const std::string& path,
               std::span<const std::byte> data) override {
    return inner_.Write(path, data);
  }
  Status Delete(const std::string& path) override {
    return inner_.Delete(path);
  }
  Result<std::uint64_t> FileSize(const std::string& path) override {
    return inner_.FileSize(path);
  }
  Result<bool> Exists(const std::string& path) override {
    return inner_.Exists(path);
  }
  Result<std::vector<storage::FileStat>> ListFiles(
      const std::string& dir) override {
    return inner_.ListFiles(dir);
  }
  storage::IoStats& Stats() override { return inner_.Stats(); }
  [[nodiscard]] std::string Name() const override { return "gate"; }

  void Release() {
    std::lock_guard lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

  [[nodiscard]] bool blocked() const {
    std::lock_guard lock(mu_);
    return blocked_;
  }

 private:
  void MaybeBlock(std::string_view path) {
    if (path != gated_path_) return;
    std::unique_lock lock(mu_);
    blocked_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    blocked_ = false;
  }

  storage::MemoryEngine inner_;
  std::string gated_path_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_ = false;
  bool released_ = false;
};

class ReadRingTest : public ::testing::Test {
 protected:
  /// Two-level memory hierarchy; `files` land on the PFS under "data/".
  Result<std::unique_ptr<Monarch>> Build(
      std::uint64_t local_quota,
      const std::vector<std::pair<std::string, std::string>>& files,
      ReadRingOptions ring = {}, storage::StorageEnginePtr pfs = nullptr) {
    pfs_ = pfs ? std::move(pfs)
               : std::make_shared<storage::MemoryEngine>("pfs");
    local_ = std::make_shared<storage::MemoryEngine>("local");
    for (const auto& [name, data] : files) {
      EXPECT_TRUE(pfs_->Write("data/" + name, Bytes(data)).ok());
    }
    MonarchConfig config;
    config.cache_tiers.push_back(TierSpec{"local", local_, local_quota});
    config.pfs = TierSpec{"pfs", pfs_, 0};
    config.dataset_dir = "data";
    config.placement.num_threads = 2;
    config.placement.enable_eviction = true;
    config.read = ring;
    return Monarch::Create(std::move(config));
  }

  /// Stage `name` into the local tier via a demand read + drain.
  void Stage(Monarch& monarch, const std::string& name, std::size_t size) {
    std::vector<std::byte> buf(size);
    ASSERT_TRUE(monarch.Read(name, 0, buf).ok());
    monarch.DrainPlacements();
  }

  storage::StorageEnginePtr pfs_;
  std::shared_ptr<storage::MemoryEngine> local_;
};

TEST_F(ReadRingTest, BatchSubmitHarvestsEveryOp) {
  auto monarch = Build(1 << 20, {{"f1", "alpha"}, {"f2", "bravo!"},
                                 {"f3", "charlie77"}});
  ASSERT_OK(monarch);
  ReadRing& ring = monarch.value()->read_ring();

  std::vector<std::vector<std::byte>> buffers(3);
  const std::vector<std::string> names = {"data/f1", "data/f2", "data/f3"};
  const std::vector<std::string> expect = {"alpha", "bravo!", "charlie77"};
  std::vector<ReadOp> ops;
  for (std::size_t i = 0; i < names.size(); ++i) {
    buffers[i].resize(expect[i].size());
    ReadOp op;
    op.name = names[i];
    op.dst = buffers[i];
    op.user_data = i;
    ops.push_back(std::move(op));
  }
  EXPECT_EQ(3u, ring.Submit(std::move(ops)));

  std::vector<ReadCompletion> done;
  while (done.size() < 3) {
    if (ring.HarvestBlocking(done) == 0 && done.size() < 3) {
      FAIL() << "ring drained before all completions arrived";
    }
  }
  // Completions may arrive out of order; user_data correlates them.
  std::set<std::uint64_t> seen;
  for (const ReadCompletion& c : done) {
    ASSERT_OK(c.bytes);
    seen.insert(c.user_data);
    EXPECT_EQ(expect[c.user_data].size(), c.bytes.value());
    EXPECT_EQ(expect[c.user_data], Text(buffers[c.user_data]));
  }
  EXPECT_EQ(3u, seen.size());

  const auto stats = ring.Stats();
  EXPECT_EQ(3u, stats.submitted);
  EXPECT_EQ(3u, stats.completed);
  EXPECT_EQ(0u, stats.cancelled);
}

TEST_F(ReadRingTest, CallbackDeliveryBypassesCompletionQueue) {
  auto monarch = Build(1 << 20, {{"f1", "payload"}});
  ASSERT_OK(monarch);
  ReadRing& ring = monarch.value()->read_ring();

  std::atomic<int> called{0};
  std::atomic<bool> all_ok{true};
  std::vector<ReadOp> ops(8);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].name = "data/f1";
    ops[i].lease = true;
    ops[i].user_data = i;
  }
  ASSERT_EQ(8u, ring.Submit(std::move(ops), [&](ReadCompletion c) {
    if (!c.bytes.ok() || c.lease.size() != 7) all_ok = false;
    called.fetch_add(1);
  }));
  while (called.load() < 8) std::this_thread::yield();
  EXPECT_TRUE(all_ok.load());

  // Callback ops never land on the harvest queue.
  std::vector<ReadCompletion> done;
  EXPECT_EQ(0u, ring.Harvest(done));
}

TEST_F(ReadRingTest, ShutdownCancelsQueuedOpsAndCompletesInflight) {
  auto gate = std::make_shared<GateEngine>("data/slow");
  auto monarch = Build(
      1 << 20, {{"slow", "gated-bytes"}, {"q1", "aaaa"}, {"q2", "bbbb"}},
      ReadRingOptions{/*depth=*/16, /*worker_threads=*/1,
                      /*zero_copy=*/true},
      gate);
  ASSERT_OK(monarch);
  ReadRing& ring = monarch.value()->read_ring();

  // Op 0 blocks the only worker inside the engine. Submit it alone and
  // wait for the block — a single batch would hand all three ops to the
  // worker at once and leave nothing queued to cancel.
  std::vector<ReadOp> first(1);
  first[0].name = "data/slow";
  first[0].lease = true;
  first[0].user_data = 0;
  ASSERT_EQ(1u, ring.Submit(std::move(first)));
  while (!gate->blocked()) std::this_thread::yield();

  // Ops 1 and 2 stay queued behind the blocked worker.
  std::vector<ReadOp> ops(2);
  ops[0].name = "data/q1";
  ops[1].name = "data/q2";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].lease = true;
    ops[i].user_data = i + 1;
  }
  ASSERT_EQ(2u, ring.Submit(std::move(ops)));

  std::thread shutdown([&ring] { ring.Shutdown(); });
  // Shutdown cancels the two queued ops before joining the blocked
  // worker.
  while (ring.Stats().cancelled < 2) std::this_thread::yield();
  gate->Release();
  shutdown.join();

  std::vector<ReadCompletion> done;
  ring.Harvest(done);
  ASSERT_EQ(3u, done.size());
  int ok = 0;
  int cancelled = 0;
  for (const ReadCompletion& c : done) {
    if (c.bytes.ok()) {
      ++ok;
      EXPECT_EQ(0u, c.user_data) << "only the in-flight op completes";
      EXPECT_EQ(11u, c.lease.size());
    } else {
      ++cancelled;
      EXPECT_EQ(StatusCode::kFailedPrecondition, c.bytes.status().code());
    }
  }
  EXPECT_EQ(1, ok);
  EXPECT_EQ(2, cancelled);

  // Submitting into a shut-down ring accepts nothing.
  std::vector<ReadOp> late(1);
  late[0].name = "data/q1";
  EXPECT_EQ(0u, ring.Submit(std::move(late)));
}

TEST_F(ReadRingTest, AsyncOpFallsDownDegradationLadder) {
  auto monarch = Build(1 << 20, {{"f1", "ladder-payload"}});
  ASSERT_OK(monarch);
  Stage(**monarch, "data/f1", 14);

  // Yank the staged copy behind MONARCH's back: the async lease op sees
  // kNotFound on the local tier and must fall through to the PFS.
  ASSERT_TRUE(local_->Delete("data/f1").ok());

  ReadRing& ring = monarch.value()->read_ring();
  std::vector<ReadOp> ops(1);
  ops[0].name = "data/f1";
  ops[0].lease = true;
  ASSERT_EQ(1u, ring.Submit(std::move(ops)));

  std::vector<ReadCompletion> done;
  while (done.size() < 1) ring.HarvestBlocking(done);
  ASSERT_OK(done[0].bytes);
  EXPECT_EQ(1, done[0].level) << "served by the PFS rung";
  std::span<const std::byte> data = done[0].lease.data();
  EXPECT_EQ("ladder-payload",
            Text(std::vector<std::byte>(data.begin(), data.end())));
}

TEST_F(ReadRingTest, ZeroCopyBytesMatchCopiedBytes) {
  const std::string payload(4096, '\0');
  std::string patterned = payload;
  for (std::size_t i = 0; i < patterned.size(); ++i) {
    patterned[i] = static_cast<char>('a' + (i * 13) % 26);
  }
  auto monarch = Build(1 << 20, {{"f1", patterned}});
  ASSERT_OK(monarch);
  Stage(**monarch, "data/f1", patterned.size());

  // Zero-copy lane.
  auto lease = monarch.value()->ReadZeroCopy("data/f1", 0);
  ASSERT_OK(lease);
  EXPECT_TRUE(lease.value().zero_copy());
  const std::uint32_t lent_crc =
      Crc32c(lease.value().data().data(), lease.value().size());

  // Forced-copy lane (same API, allow_zero_copy=false).
  auto copied = monarch.value()->ReadZeroCopy(
      "data/f1", 0, std::numeric_limits<std::uint64_t>::max(),
      /*allow_zero_copy=*/false);
  ASSERT_OK(copied);
  EXPECT_FALSE(copied.value().zero_copy());
  const std::uint32_t copy_crc =
      Crc32c(copied.value().data().data(), copied.value().size());

  // Classic copying Read.
  std::vector<std::byte> buf(patterned.size());
  ASSERT_TRUE(monarch.value()->Read("data/f1", 0, buf).ok());
  const std::uint32_t read_crc = Crc32c(buf.data(), buf.size());

  EXPECT_EQ(lease.value().size(), copied.value().size());
  EXPECT_EQ(lent_crc, copy_crc);
  EXPECT_EQ(lent_crc, read_crc);
  EXPECT_EQ(lent_crc, Crc32c(patterned.data(), patterned.size()));
}

TEST_F(ReadRingTest, PartialZeroCopyReadRespectsOffsetAndCap) {
  auto monarch = Build(1 << 20, {{"f1", "0123456789"}});
  ASSERT_OK(monarch);
  Stage(**monarch, "data/f1", 10);

  auto lease = monarch.value()->ReadZeroCopy("data/f1", 3, 4);
  ASSERT_OK(lease);
  std::span<const std::byte> data = lease.value().data();
  EXPECT_EQ("3456", Text(std::vector<std::byte>(data.begin(), data.end())));

  // Offset past EOF is an empty view, not an error.
  auto past = monarch.value()->ReadZeroCopy("data/f1", 64);
  ASSERT_OK(past);
  EXPECT_TRUE(past.value().empty());
}

TEST_F(ReadRingTest, RingStatsCountZeroCopyHits) {
  auto monarch = Build(1 << 20, {{"f1", "counted"}});
  ASSERT_OK(monarch);
  Stage(**monarch, "data/f1", 7);
  ReadRing& ring = monarch.value()->read_ring();

  std::vector<std::byte> buf(7);
  std::vector<ReadOp> ops(2);
  ops[0].name = "data/f1";
  ops[0].lease = true;
  ops[1].name = "data/f1";
  ops[1].dst = buf;
  ASSERT_EQ(2u, ring.Submit(std::move(ops)));
  std::vector<ReadCompletion> done;
  while (done.size() < 2) ring.HarvestBlocking(done);

  const auto stats = ring.Stats();
  EXPECT_EQ(1u, stats.zero_copy_reads);
  EXPECT_EQ(1u, stats.copy_reads);
  EXPECT_DOUBLE_EQ(0.5, stats.zero_copy_hit_rate());
}

TEST_F(ReadRingTest, LeasePinBlocksEviction) {
  // Quota fits ONE staged file; staging a second must evict the first —
  // unless a lease pins it.
  const std::string payload(256, 'x');
  auto monarch = Build(300, {{"f1", payload}, {"f2", payload}},
                       ReadRingOptions{});
  ASSERT_OK(monarch);
  Stage(**monarch, "data/f1", payload.size());

  auto lease = monarch.value()->ReadZeroCopy("data/f1", 0);
  ASSERT_OK(lease);
  ASSERT_TRUE(lease.value().pinned());

  // Demand f2 while f1 is pinned: eviction claims f1, sees the pin, and
  // reverts (the staging of f2 is refused, not served by evicting f1).
  std::vector<std::byte> buf(payload.size());
  ASSERT_TRUE(monarch.value()->Read("data/f2", 0, buf).ok());
  monarch.value()->DrainPlacements();

  EXPECT_GE(monarch.value()->Stats().placement.eviction_pinned_skips, 1u);
  EXPECT_TRUE(local_->Exists("data/f1").value_or(false))
      << "pinned copy must survive";
  std::span<const std::byte> data = lease.value().data();
  EXPECT_EQ(payload, Text(std::vector<std::byte>(data.begin(), data.end())));

  // Released, the copy becomes a legal victim again.
  lease.value().Release();
  EXPECT_FALSE(lease.value().pinned());
  ASSERT_TRUE(monarch.value()->Read("data/f2", 0, buf).ok());
  monarch.value()->DrainPlacements();
  EXPECT_TRUE(local_->Exists("data/f2").value_or(false))
      << "eviction proceeds once unpinned";
}

TEST_F(ReadRingTest, LeaseOutlivesEngineDeleteAndShutdown) {
  auto monarch = Build(1 << 20, {{"f1", "immortal-bytes"}});
  ASSERT_OK(monarch);
  Stage(**monarch, "data/f1", 14);

  auto lease = monarch.value()->ReadZeroCopy("data/f1", 0);
  ASSERT_OK(lease);
  ASSERT_TRUE(lease.value().zero_copy());

  // Delete the file from the lending engine, then tear the whole
  // instance down: the view's keepalive must keep the bytes valid.
  ASSERT_TRUE(local_->Delete("data/f1").ok());
  monarch.value()->Shutdown();
  monarch.value().reset();
  local_.reset();
  pfs_.reset();

  std::span<const std::byte> data = lease.value().data();
  EXPECT_EQ("immortal-bytes",
            Text(std::vector<std::byte>(data.begin(), data.end())));
}

TEST_F(ReadRingTest, MovedLeaseTransfersThePin) {
  auto monarch = Build(1 << 20, {{"f1", "move-me"}});
  ASSERT_OK(monarch);
  Stage(**monarch, "data/f1", 7);

  auto lease = monarch.value()->ReadZeroCopy("data/f1", 0);
  ASSERT_OK(lease);
  FileInfoPtr info = monarch.value()->metadata().Lookup("data/f1");
  ASSERT_NE(nullptr, info);
  EXPECT_EQ(1, info->read_pins.load());

  ReadLease moved = std::move(lease).value();
  EXPECT_EQ(1, info->read_pins.load()) << "move must not double-count";
  EXPECT_TRUE(moved.pinned());
  moved.Release();
  EXPECT_EQ(0, info->read_pins.load());
  moved.Release();  // idempotent
  EXPECT_EQ(0, info->read_pins.load());
}

// TSan stress: async lease/copy readers race demand reads, placement,
// and quota-pressure eviction over a tier that holds only a few files.
TEST_F(ReadRingTest, StressAsyncReadersVsPlacementAndEviction) {
  const std::string payload(512, 'p');
  std::vector<std::pair<std::string, std::string>> files;
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) {
    files.emplace_back("f" + std::to_string(i), payload);
    names.push_back("data/f" + std::to_string(i));
  }
  // Quota fits ~3 files: constant eviction pressure.
  auto monarch = Build(1600, files,
                       ReadRingOptions{/*depth=*/64, /*worker_threads=*/2,
                                       /*zero_copy=*/true});
  ASSERT_OK(monarch);
  ReadRing& ring = monarch.value()->read_ring();

  std::atomic<bool> stop{false};
  std::atomic<int> async_ok{0};
  std::atomic<bool> corrupt{false};

  // Two submitter threads: callback-verified lease + copy ops.
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; !stop.load(); ++round) {
        std::vector<ReadOp> ops(4);
        for (int i = 0; i < 4; ++i) {
          ops[static_cast<std::size_t>(i)].name =
              names[static_cast<std::size_t>((round + i * 3 + t) % 8)];
          ops[static_cast<std::size_t>(i)].lease = true;
        }
        if (ring.Submit(std::move(ops), [&](ReadCompletion c) {
              if (!c.bytes.ok()) return;  // shutdown races are fine
              if (c.lease.size() != payload.size() ||
                  static_cast<char>(c.lease.data()[0]) != 'p') {
                corrupt = true;
              }
              async_ok.fetch_add(1);
            }) == 0) {
          return;
        }
      }
    });
  }

  // Main thread: demand reads keep placement and eviction churning.
  std::vector<std::byte> buf(payload.size());
  for (int round = 0; round < 30; ++round) {
    for (const std::string& name : names) {
      ASSERT_TRUE(monarch.value()->Read(name, 0, buf).ok());
    }
    monarch.value()->DrainPlacements();
  }
  while (async_ok.load() < 64) std::this_thread::yield();
  stop = true;
  for (std::thread& t : submitters) t.join();
  monarch.value()->Shutdown();

  EXPECT_FALSE(corrupt.load()) << "a lent page was recycled mid-read";
  EXPECT_GE(async_ok.load(), 64);
}

}  // namespace
}  // namespace monarch::core
