// Scan resistance + tenant threading through the staging pipeline
// (ISSUE 10): a low-retention (scan) tenant can evict other scan copies
// but NEVER a demand working set; demand tenants reclaim scan-held
// space first; a scan-staging cap bounds how much cache a full-dataset
// pass may occupy.
#include "core/placement_handler.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "../test_support.h"
#include "qos/tenant.h"
#include "storage/memory_engine.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;

qos::TenantContext Trainer() {
  qos::TenantContext tenant;
  tenant.tenant_id = 1;
  tenant.name = "trainer";
  tenant.io_class = qos::IoClass::kTraining;
  return tenant;
}

qos::TenantContext Scanner() {
  qos::TenantContext tenant;
  tenant.tenant_id = 2;
  tenant.name = "scanner";
  tenant.io_class = qos::IoClass::kScan;
  tenant.low_retention = true;
  return tenant;
}

class QosPlacementTest : public ::testing::Test {
 protected:
  void Build(std::uint64_t quota, PlacementOptions options = {}) {
    options.qos.enabled = true;
    options.enable_eviction = true;
    options.num_threads = 2;
    pfs_engine_ = std::make_shared<storage::MemoryEngine>("pfs");
    std::vector<StorageDriverPtr> drivers;
    cache_engine_ = std::make_shared<storage::MemoryEngine>("tier0");
    drivers.push_back(
        std::make_unique<StorageDriver>("tier0", cache_engine_, quota, false));
    drivers.push_back(
        std::make_unique<StorageDriver>("pfs", pfs_engine_, 0, true));
    hierarchy_ =
        std::move(StorageHierarchy::Create(std::move(drivers))).value();
    handler_ = std::make_unique<PlacementHandler>(
        *hierarchy_, metadata_, MakeFirstFitPolicy(), options);
  }

  FileInfoPtr AddPfsFile(const std::string& name, const std::string& data) {
    EXPECT_TRUE(pfs_engine_->Write(name, Bytes(data)).ok());
    metadata_.Register(name, data.size(), hierarchy_->pfs_level());
    return metadata_.Lookup(name);
  }

  /// Schedule a demand placement with `tenant` installed as the ambient
  /// submitter (the pipeline snapshots it into the task) and drain.
  void StageAs(const qos::TenantContext& tenant, const FileInfoPtr& file) {
    ASSERT_TRUE(file->TryBeginFetch());
    qos::ScopedTenant scope(tenant);
    handler_->SchedulePlacement(file, std::nullopt);
    handler_->Drain();
  }

  storage::StorageEnginePtr pfs_engine_;
  storage::StorageEnginePtr cache_engine_;
  std::unique_ptr<StorageHierarchy> hierarchy_;
  MetadataContainer metadata_;
  std::unique_ptr<PlacementHandler> handler_;
};

TEST_F(QosPlacementTest, ScanCopiesAreMarkedLowRetention) {
  Build(100);
  auto file = AddPfsFile("scan-file", "0123456789");
  StageAs(Scanner(), file);

  EXPECT_EQ(PlacementState::kPlaced, file->state.load());
  EXPECT_TRUE(file->low_retention.load());
  EXPECT_EQ(10u, handler_->Stats().low_retention_resident_bytes);
}

TEST_F(QosPlacementTest, TrainerCopiesAreNotLowRetention) {
  Build(100);
  auto file = AddPfsFile("train-file", "0123456789");
  StageAs(Trainer(), file);

  EXPECT_EQ(PlacementState::kPlaced, file->state.load());
  EXPECT_FALSE(file->low_retention.load());
  EXPECT_EQ(0u, handler_->Stats().low_retention_resident_bytes);
}

TEST_F(QosPlacementTest, ScanCannotEvictTrainingWorkingSet) {
  Build(15);
  auto working_set = AddPfsFile("train-file", "0123456789");
  working_set->last_access.store(1);
  StageAs(Trainer(), working_set);
  ASSERT_EQ(PlacementState::kPlaced, working_set->state.load());

  auto scan_file = AddPfsFile("scan-file", "0123456789");
  scan_file->last_access.store(2);
  StageAs(Scanner(), scan_file);

  // The trainer's copy survives; the scan's placement is refused (and
  // stays retryable), and the cross-class canary never fires.
  EXPECT_EQ(PlacementState::kPlaced, working_set->state.load());
  EXPECT_NE(PlacementState::kPlaced, scan_file->state.load());
  const auto stats = handler_->Stats();
  EXPECT_EQ(0u, stats.evictions);
  EXPECT_EQ(0u, stats.cross_class_evictions);
  EXPECT_EQ(10u, hierarchy_->Level(0).occupancy_bytes());
}

TEST_F(QosPlacementTest, ScanMayEvictOtherScanCopies) {
  Build(15);
  auto first = AddPfsFile("scan-a", "0123456789");
  first->last_access.store(1);
  StageAs(Scanner(), first);
  ASSERT_EQ(PlacementState::kPlaced, first->state.load());

  auto second = AddPfsFile("scan-b", "0123456789");
  second->last_access.store(2);
  StageAs(Scanner(), second);

  EXPECT_EQ(PlacementState::kPlaced, second->state.load());
  EXPECT_EQ(PlacementState::kPfsOnly, first->state.load());
  const auto stats = handler_->Stats();
  EXPECT_EQ(1u, stats.evictions);
  EXPECT_EQ(0u, stats.cross_class_evictions);
  // The evicted copy's bytes left the low-retention gauge; the new
  // copy's bytes replaced them.
  EXPECT_EQ(10u, stats.low_retention_resident_bytes);
}

TEST_F(QosPlacementTest, TrainerReclaimsScanSpaceFirst) {
  Build(25);
  auto old_train = AddPfsFile("train-old", "0123456789");
  old_train->last_access.store(1);  // LRU alone would evict this first
  StageAs(Trainer(), old_train);
  auto scan_file = AddPfsFile("scan-file", "0123456789");
  scan_file->last_access.store(5);  // most recently used resident
  StageAs(Scanner(), scan_file);
  ASSERT_EQ(PlacementState::kPlaced, old_train->state.load());
  ASSERT_EQ(PlacementState::kPlaced, scan_file->state.load());

  auto new_train = AddPfsFile("train-new", "0123456789");
  new_train->last_access.store(9);
  StageAs(Trainer(), new_train);

  // Low-retention victims are tried before LRU order: the scan copy
  // goes even though the old training copy is least recently used.
  EXPECT_EQ(PlacementState::kPlaced, new_train->state.load());
  EXPECT_EQ(PlacementState::kPlaced, old_train->state.load());
  EXPECT_EQ(PlacementState::kPfsOnly, scan_file->state.load());
  EXPECT_EQ(0u, handler_->Stats().low_retention_resident_bytes);
}

TEST_F(QosPlacementTest, ScanStageCapRefusesFurtherStagings) {
  PlacementOptions options;
  options.qos.scan_stage_cap_bytes = 12;
  Build(100, options);

  auto first = AddPfsFile("scan-a", "0123456789");
  StageAs(Scanner(), first);
  ASSERT_EQ(PlacementState::kPlaced, first->state.load());

  auto second = AddPfsFile("scan-b", "0123456789");
  StageAs(Scanner(), second);

  // 10 resident + 10 new > 12: the second staging is refused without
  // touching the tier, but stays retryable (kPfsOnly, stage_refused
  // latched so the read path serves from the PFS without re-queuing).
  EXPECT_EQ(PlacementState::kPfsOnly, second->state.load());
  EXPECT_TRUE(second->stage_refused.load());
  const auto stats = handler_->Stats();
  EXPECT_GE(stats.scan_stage_refusals, 1u);
  EXPECT_EQ(10u, stats.low_retention_resident_bytes);
  EXPECT_EQ(10u, hierarchy_->Level(0).occupancy_bytes());
}

TEST_F(QosPlacementTest, TrainingStagingsIgnoreTheScanCap) {
  PlacementOptions options;
  options.qos.scan_stage_cap_bytes = 5;  // smaller than any file here
  Build(100, options);

  auto file = AddPfsFile("train-file", "0123456789");
  StageAs(Trainer(), file);

  EXPECT_EQ(PlacementState::kPlaced, file->state.load());
  EXPECT_EQ(0u, handler_->Stats().scan_stage_refusals);
}

TEST_F(QosPlacementTest, QueuesDrainAcrossAllClasses) {
  Build(200);
  auto a = AddPfsFile("a", "0123456789");
  auto b = AddPfsFile("b", "0123456789");
  StageAs(Trainer(), a);
  StageAs(Scanner(), b);

  const auto stats = handler_->Stats();
  EXPECT_EQ(2u, stats.completed);
  EXPECT_EQ(0u, stats.queue_depth_interactive);
  EXPECT_EQ(0u, stats.queue_depth_training);
  EXPECT_EQ(0u, stats.queue_depth_scan);
  EXPECT_EQ(0u, stats.queue_depth_drain);
  EXPECT_EQ(0u, stats.queue_depth_demand);
}

}  // namespace
}  // namespace monarch::core
