// ISSUE 2 integration suite: fault-tolerant I/O end to end. Every test
// builds a real Monarch over FaultyEngine-wrapped memory engines and
// asserts the degradation ladder's contract — injected faults are
// absorbed (retry, fallback, quarantine), never surfaced to the caller,
// and every absorbed fault is visible in the stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "../test_support.h"
#include "core/monarch.h"
#include "core/storage_driver.h"
#include "dlsim/monarch_opener.h"
#include "dlsim/trainer.h"
#include "storage/faulty_engine.h"
#include "storage/memory_engine.h"
#include "util/clock.h"
#include "workload/dataset_generator.h"

namespace monarch::core {
namespace {

using monarch::testing::Bytes;
using storage::FaultyEngine;
using storage::MemoryEngine;

constexpr std::size_t kFileBytes = 4096;

std::vector<std::byte> GoldenPayload(int index) {
  std::vector<std::byte> payload(kFileBytes);
  for (std::size_t b = 0; b < kFileBytes; ++b) {
    payload[b] = static_cast<std::byte>((b * 31 + index * 7) & 0xff);
  }
  return payload;
}

/// A two-tier hierarchy ("local" over "pfs") where both engines inject
/// faults; the inner PFS engine holds `num_files` golden payloads.
struct FaultyWorld {
  std::shared_ptr<FaultyEngine> local;
  std::shared_ptr<FaultyEngine> pfs;
  std::unique_ptr<Monarch> monarch;
  std::vector<std::string> names;
};

FaultyWorld BuildWorld(int num_files, FaultyEngine::FaultSpec local_spec,
                       FaultyEngine::FaultSpec pfs_spec,
                       ResilienceOptions resilience = {}) {
  FaultyWorld world;
  auto pfs_inner = std::make_shared<MemoryEngine>("pfs");
  for (int i = 0; i < num_files; ++i) {
    EXPECT_TRUE(pfs_inner
                    ->Write("data/f" + std::to_string(i) + ".bin",
                            GoldenPayload(i))
                    .ok());
  }
  world.local = std::make_shared<FaultyEngine>(
      std::make_shared<MemoryEngine>("local"), local_spec);
  world.pfs = std::make_shared<FaultyEngine>(std::move(pfs_inner), pfs_spec);

  MonarchConfig config;
  config.cache_tiers.push_back(
      TierSpec{"local", world.local, /*quota_bytes=*/1ull << 22});
  config.pfs = TierSpec{"pfs", world.pfs, 0};
  config.dataset_dir = "data";
  config.resilience = resilience;
  auto monarch = Monarch::Create(std::move(config));
  EXPECT_TRUE(monarch.ok()) << monarch.status().ToString();
  if (monarch.ok()) {
    world.monarch = std::move(monarch).value();
    for (const auto& entry : world.monarch->metadata().Snapshot()) {
      world.names.push_back(entry.name);
    }
  }
  return world;
}

int GoldenIndex(const std::string& name) {
  return std::atoi(name.substr(name.find('f') + 1).c_str());
}

// ---------------------------------------------------------------------
// Driver-level retry envelope.

TEST(ResilienceTest, DriverRetriesTransientReadFaults) {
  auto engine = std::make_shared<FaultyEngine>(
      std::make_shared<MemoryEngine>("m"), FaultyEngine::FaultSpec{});
  ASSERT_OK(engine->Write("f", Bytes("abc")));
  StorageDriver driver("t", engine, /*quota_bytes=*/0, /*read_only=*/true);

  engine->FailNextReads(2);
  std::vector<std::byte> buf(3);
  ASSERT_OK(driver.Read("f", 0, buf));
  EXPECT_EQ(2u, driver.retries());
  EXPECT_EQ(2u, engine->injected_failures());
}

TEST(ResilienceTest, DriverSurfacesErrorAfterExhaustingAttempts) {
  auto engine = std::make_shared<FaultyEngine>(
      std::make_shared<MemoryEngine>("m"), FaultyEngine::FaultSpec{});
  ASSERT_OK(engine->Write("f", Bytes("abc")));
  RetryPolicy retry;
  retry.max_attempts = 3;
  StorageDriver driver("t", engine, 0, /*read_only=*/true, retry);

  engine->FailNextReads(10);
  std::vector<std::byte> buf(3);
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, driver.Read("f", 0, buf));
  // 3 attempts = the initial try plus 2 retries.
  EXPECT_EQ(2u, driver.retries());
}

TEST(ResilienceTest, DriverDoesNotRetryNotFound) {
  auto engine = std::make_shared<FaultyEngine>(
      std::make_shared<MemoryEngine>("m"), FaultyEngine::FaultSpec{});
  StorageDriver driver("t", engine, 0, /*read_only=*/true);
  std::vector<std::byte> buf(3);
  EXPECT_STATUS_CODE(StatusCode::kNotFound, driver.Read("missing", 0, buf));
  EXPECT_EQ(0u, driver.retries());
  // Misses must not poison the health window either.
  EXPECT_EQ(0.0, driver.health().error_rate());
}

TEST(ResilienceTest, DriverRetriesWrites) {
  auto engine = std::make_shared<FaultyEngine>(
      std::make_shared<MemoryEngine>("m"), FaultyEngine::FaultSpec{});
  StorageDriver driver("t", engine, 0, /*read_only=*/false);
  engine->FailNextWrites(1);
  ASSERT_OK(driver.Write("f", Bytes("abc")));
  EXPECT_EQ(1u, driver.retries());
}

// ---------------------------------------------------------------------
// Read-path degradation ladder.

TEST(ResilienceTest, ReadFallsBackToPfsOnAnyTierError) {
  auto world = BuildWorld(2, {}, {});
  ASSERT_TRUE(world.monarch != nullptr);
  std::vector<std::byte> buf(kFileBytes);

  // Stage both files, then make the local tier fail hard on the next
  // read: the caller must still get the authoritative bytes.
  for (const auto& name : world.names) {
    ASSERT_OK(world.monarch->Read(name, 0, buf));
  }
  world.monarch->DrainPlacements();
  ASSERT_EQ(2u, world.monarch->Stats().placement.completed);

  world.local->FailNextReads(100);  // > retry attempts
  ASSERT_OK(world.monarch->Read(world.names[0], 0, buf));
  EXPECT_EQ(GoldenPayload(GoldenIndex(world.names[0])),
            std::vector<std::byte>(buf.begin(), buf.end()));

  const auto stats = world.monarch->Stats();
  EXPECT_EQ(1u, stats.fallbacks_tier_error);
  EXPECT_EQ(1u, stats.degraded_fallbacks);
  EXPECT_GE(stats.levels[0].retries, 1u);
}

TEST(ResilienceTest, MetadataFaultsAtStartupAreRetried) {
  auto pfs_inner = std::make_shared<MemoryEngine>("pfs");
  ASSERT_OK(pfs_inner->Write("data/f0.bin", GoldenPayload(0)));
  auto pfs = std::make_shared<FaultyEngine>(pfs_inner,
                                            FaultyEngine::FaultSpec{});
  pfs->FailNextMetadataOps(2);  // the startup ListFiles walk

  MonarchConfig config;
  config.cache_tiers.push_back(
      TierSpec{"local", std::make_shared<MemoryEngine>("local"), 1ull << 20});
  config.pfs = TierSpec{"pfs", pfs, 0};
  config.dataset_dir = "data";
  auto monarch = Monarch::Create(std::move(config));
  ASSERT_OK(monarch);
  EXPECT_EQ(1u, (*monarch)->Stats().files_indexed);
}

// ---------------------------------------------------------------------
// Staged-copy integrity.

TEST(ResilienceTest, CorruptStagingIsCaughtByWriteVerification) {
  ResilienceOptions resilience;
  resilience.verify_staged_writes = true;
  auto world = BuildWorld(1, {}, {}, resilience);
  ASSERT_TRUE(world.monarch != nullptr);
  std::vector<std::byte> buf(kFileBytes);

  // The only local-tier read while the file is unplaced is the staging
  // readback: corrupt it, and the copy must never be published.
  world.local->CorruptNextReads(1);
  ASSERT_OK(world.monarch->Read(world.names[0], 0, buf));
  world.monarch->DrainPlacements();

  auto stats = world.monarch->Stats();
  EXPECT_EQ(1u, stats.placement.quarantined);
  EXPECT_EQ(0u, stats.placement.completed);
  EXPECT_EQ(1u, stats.placement.retries);  // still retryable

  // The next access re-stages cleanly and the tier copy serves reads.
  ASSERT_OK(world.monarch->Read(world.names[0], 0, buf));
  world.monarch->DrainPlacements();
  stats = world.monarch->Stats();
  EXPECT_EQ(1u, stats.placement.completed);
  ASSERT_OK(world.monarch->Read(world.names[0], 0, buf));
  EXPECT_EQ(GoldenPayload(0), std::vector<std::byte>(buf.begin(), buf.end()));
}

TEST(ResilienceTest, CorruptTierCopyIsQuarantinedOnRead) {
  ResilienceOptions resilience;
  resilience.verify_on_read = true;
  auto world = BuildWorld(1, {}, {}, resilience);
  ASSERT_TRUE(world.monarch != nullptr);
  std::vector<std::byte> buf(kFileBytes);

  ASSERT_OK(world.monarch->Read(world.names[0], 0, buf));
  world.monarch->DrainPlacements();
  ASSERT_EQ(1u, world.monarch->Stats().placement.completed);

  // Serve one corrupted read from the tier copy: the caller must still
  // receive the authoritative bytes (via the PFS) and the copy must be
  // quarantined.
  world.local->CorruptNextReads(1);
  ASSERT_OK(world.monarch->Read(world.names[0], 0, buf));
  EXPECT_EQ(GoldenPayload(0), std::vector<std::byte>(buf.begin(), buf.end()));

  const auto stats = world.monarch->Stats();
  EXPECT_EQ(1u, stats.fallbacks_corruption);
  EXPECT_EQ(1u, stats.placement.quarantined);
  // The quarantined copy released its quota.
  world.monarch->DrainPlacements();
  EXPECT_EQ(1u, world.local->injected_corruptions());
}

TEST(ResilienceTest, PlacementRetryCapMarksFileUnplaceable) {
  FaultyEngine::FaultSpec local_spec;
  local_spec.write_failure_rate = 1.0;  // staging can never succeed
  ResilienceOptions resilience;
  resilience.max_placement_attempts = 2;
  auto world = BuildWorld(1, local_spec, {}, resilience);
  ASSERT_TRUE(world.monarch != nullptr);
  std::vector<std::byte> buf(kFileBytes);

  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(world.monarch->Read(world.names[0], 0, buf));
    world.monarch->DrainPlacements();
  }
  const auto stats = world.monarch->Stats();
  EXPECT_EQ(2u, stats.placement.failed);
  EXPECT_EQ(1u, stats.placement.retries);    // attempt 1 stayed retryable
  EXPECT_EQ(1u, stats.placement.abandoned);  // attempt 2 hit the cap
  // The cap stops further scheduling: reads keep succeeding from the PFS
  // and the staging pool is left alone.
  EXPECT_EQ(2u, stats.placement.scheduled);
  ASSERT_OK(world.monarch->Read(world.names[0], 0, buf));
  EXPECT_EQ(GoldenPayload(0), std::vector<std::byte>(buf.begin(), buf.end()));
}

// ---------------------------------------------------------------------
// The acceptance scenario: multi-epoch training with probabilistic
// faults on both tiers completes with zero app-visible errors,
// byte-identical data, and stats that reconcile with the injected count.

TEST(ResilienceTest, TrainingSurvivesProbabilisticFaultsByteIdentical) {
  FaultyEngine::FaultSpec local_spec;
  local_spec.read_failure_rate = 0.05;
  local_spec.write_failure_rate = 0.05;
  local_spec.seed = 7;
  FaultyEngine::FaultSpec pfs_spec;
  pfs_spec.read_failure_rate = 0.02;
  pfs_spec.seed = 11;
  auto world = BuildWorld(32, local_spec, pfs_spec);
  ASSERT_TRUE(world.monarch != nullptr);

  constexpr int kEpochs = 3;
  std::uint64_t app_errors = 0;
  std::uint64_t mismatches = 0;
  std::vector<std::byte> buf(kFileBytes);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    for (const auto& name : world.names) {
      auto read = world.monarch->Read(name, 0, buf);
      if (!read.ok() || read.value() != kFileBytes) {
        ++app_errors;
        continue;
      }
      if (GoldenPayload(GoldenIndex(name)) !=
          std::vector<std::byte>(buf.begin(), buf.end())) {
        ++mismatches;
      }
    }
    world.monarch->DrainPlacements();
  }

  EXPECT_EQ(0u, app_errors);
  EXPECT_EQ(0u, mismatches);

  const auto stats = world.monarch->Stats();
  const std::uint64_t injected =
      world.local->injected_failures() + world.pfs->injected_failures();
  std::uint64_t driver_retries = 0;
  for (const auto& level : stats.levels) driver_retries += level.retries;

  // The fault rates make injections statistically certain over
  // 3 epochs x 32 files (deterministic seeds make this reproducible).
  EXPECT_GT(injected, 0u);
  EXPECT_GT(driver_retries, 0u);

  // Reconciliation: every injected fault was either absorbed by a driver
  // retry or surfaced exactly once — as a PFS fallback (tier_error), a
  // failed staging attempt, or an app-visible error (zero here). Nothing
  // is double-counted and nothing vanishes.
  EXPECT_EQ(injected, driver_retries + stats.fallbacks_tier_error +
                          stats.placement.failed + app_errors);
}

TEST(ResilienceTest, DlsimTrainingCompletesUnderFaults) {
  // Real TFRecord dataset + dlsim trainer: the framework-visible story.
  auto pfs_inner = std::make_shared<MemoryEngine>("pfs");
  auto manifest =
      workload::GenerateDataset(*pfs_inner, workload::DatasetSpec::Tiny());
  ASSERT_OK(manifest);

  FaultyEngine::FaultSpec local_spec;
  local_spec.read_failure_rate = 0.05;
  local_spec.write_failure_rate = 0.05;
  local_spec.seed = 21;
  FaultyEngine::FaultSpec pfs_spec;
  pfs_spec.read_failure_rate = 0.02;
  pfs_spec.seed = 22;
  auto local = std::make_shared<FaultyEngine>(
      std::make_shared<MemoryEngine>("local"), local_spec);
  auto pfs = std::make_shared<FaultyEngine>(pfs_inner, pfs_spec);

  MonarchConfig config;
  config.cache_tiers.push_back(TierSpec{"local", local, 1ull << 26});
  config.pfs = TierSpec{"pfs", pfs, 0};
  config.dataset_dir = manifest->spec.directory;
  auto monarch = Monarch::Create(std::move(config));
  ASSERT_OK(monarch);

  std::vector<std::string> files = manifest->file_paths;
  ASSERT_FALSE(files.empty());

  dlsim::TrainerConfig tc;
  tc.model = dlsim::ModelProfile::LeNet();
  tc.epochs = 3;
  dlsim::Trainer trainer(files, std::make_unique<dlsim::MonarchOpener>(
                                    **monarch),
                         tc);
  auto result = trainer.Train();
  ASSERT_OK(result);
  ASSERT_EQ(3u, result->epochs.size());
  // Every epoch must process the full dataset — a dropped file would
  // show up as a short epoch. (TFRecord framing CRCs double-check bytes.)
  for (const auto& epoch : result->epochs) {
    EXPECT_EQ(result->epochs.front().samples, epoch.samples);
    EXPECT_GT(epoch.samples, 0u);
  }
  (*monarch)->DrainPlacements();

  const std::uint64_t injected =
      local->injected_failures() + pfs->injected_failures();
  const auto stats = (*monarch)->Stats();
  std::uint64_t driver_retries = 0;
  for (const auto& level : stats.levels) driver_retries += level.retries;
  EXPECT_GT(injected, 0u);
  EXPECT_GT(driver_retries + stats.degraded_fallbacks, 0u);
}

// ---------------------------------------------------------------------
// Hard-down outage: the circuit opens, throughput degrades to the PFS
// (not zero), and the tier rejoins after it heals.

TEST(ResilienceTest, HardDownTierOpensCircuitAndRecovers) {
  ResilienceOptions resilience;
  resilience.health.window = 32;
  resilience.health.min_samples = 8;
  resilience.health.cooldown = Millis(10);
  resilience.health.half_open_successes = 1;
  auto world = BuildWorld(16, {}, {}, resilience);
  ASSERT_TRUE(world.monarch != nullptr);
  std::vector<std::byte> buf(kFileBytes);

  // Epoch 0: place everything on the local tier.
  for (const auto& name : world.names) {
    ASSERT_OK(world.monarch->Read(name, 0, buf));
  }
  world.monarch->DrainPlacements();
  ASSERT_EQ(16u, world.monarch->Stats().placement.completed);

  // Outage mid-job: every read must still succeed, byte-identical.
  world.local->FailUntilHealed();
  for (const auto& name : world.names) {
    ASSERT_OK(world.monarch->Read(name, 0, buf));
    EXPECT_EQ(GoldenPayload(GoldenIndex(name)),
              std::vector<std::byte>(buf.begin(), buf.end()));
  }
  auto stats = world.monarch->Stats();
  EXPECT_EQ(CircuitState::kOpen, stats.levels[0].circuit_state);
  EXPECT_GE(stats.levels[0].circuit_opens, 1u);
  EXPECT_GT(stats.degraded_fallbacks, 0u);
  EXPECT_GT(stats.fallbacks_circuit_open, 0u);
  // Degraded, not dead: the PFS level served the outage-epoch reads.
  EXPECT_GE(stats.levels.back().reads, 16u);

  // Heal, wait out the cooldown, and read until the breaker closes. The
  // copies are still staged, so probe reads succeed immediately.
  world.local->Heal();
  PreciseSleep(Millis(15));
  const std::uint64_t local_reads_before = stats.levels[0].reads;
  for (const auto& name : world.names) {
    ASSERT_OK(world.monarch->Read(name, 0, buf));
  }
  stats = world.monarch->Stats();
  EXPECT_EQ(CircuitState::kClosed, stats.levels[0].circuit_state);
  // The local tier is serving again.
  EXPECT_GT(stats.levels[0].reads, local_reads_before);
}

}  // namespace
}  // namespace monarch::core
