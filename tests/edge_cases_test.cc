// Cross-cutting edge cases that don't belong to a single module's suite:
// degenerate buffer sizes, degenerate configurations, and boundary
// interactions between the reader, the loader and the middleware.
#include <gtest/gtest.h>

#include <memory>

#include "core/config.h"
#include "core/monarch.h"
#include "dlsim/data_loader.h"
#include "dlsim/trainer.h"
#include "storage/memory_engine.h"
#include "test_support.h"
#include "tfrecord/reader.h"
#include "tfrecord/writer.h"
#include "workload/dataset_generator.h"

namespace monarch {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

TEST(ReaderEdgeCases, BufferSmallerThanHeaderStillWorks) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  tfrecord::TFRecordWriter writer;
  writer.Append(Bytes("alpha"));
  writer.Append(Bytes("beta"));
  ASSERT_OK(writer.Flush(*engine, "f"));

  // buffer_bytes = 8 < 12-byte header: reads larger than the buffer must
  // bypass it, smaller ones refill it; either way bytes are exact.
  tfrecord::EngineSource source(engine, "f");
  tfrecord::TFRecordReader reader(source, {.buffer_bytes = 8});
  EXPECT_EQ("alpha", Text(reader.ReadRecord().value()));
  EXPECT_EQ("beta", Text(reader.ReadRecord().value()));
  EXPECT_STATUS_CODE(StatusCode::kOutOfRange, reader.ReadRecord());
}

TEST(ReaderEdgeCases, BufferOfOneByte) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  tfrecord::TFRecordWriter writer;
  writer.Append(Bytes("x"));
  ASSERT_OK(writer.Flush(*engine, "f"));
  tfrecord::EngineSource source(engine, "f");
  tfrecord::TFRecordReader reader(source, {.buffer_bytes = 1});
  EXPECT_EQ("x", Text(reader.ReadRecord().value()));
}

TEST(MonarchEdgeCases, ReadIntoEmptyBuffer) {
  auto pfs = std::make_shared<storage::MemoryEngine>("pfs");
  ASSERT_OK(pfs->Write("data/f", Bytes("content")));
  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{
      "local", std::make_shared<storage::MemoryEngine>("l"), 1024});
  config.pfs = core::TierSpec{"pfs", pfs, 0};
  config.dataset_dir = "data";
  auto monarch = core::Monarch::Create(std::move(config));
  ASSERT_OK(monarch);

  std::span<std::byte> empty;
  auto read = monarch.value()->Read("data/f", 0, empty);
  ASSERT_OK(read);
  EXPECT_EQ(0u, read.value());
}

TEST(MonarchEdgeCases, ReadBufferLargerThanFileCountsAsFullRead) {
  auto pfs = std::make_shared<storage::MemoryEngine>("pfs");
  auto local = std::make_shared<storage::MemoryEngine>("local");
  ASSERT_OK(pfs->Write("data/f", Bytes("short")));
  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{"local", local, 1024});
  config.pfs = core::TierSpec{"pfs", pfs, 0};
  config.dataset_dir = "data";
  auto monarch = core::Monarch::Create(std::move(config));
  ASSERT_OK(monarch);

  std::vector<std::byte> big(4096);
  auto read = monarch.value()->Read("data/f", 0, big);
  ASSERT_OK(read);
  EXPECT_EQ(5u, read.value());
  monarch.value()->DrainPlacements();
  // The short read covered the whole file, so the placement reused the
  // bytes: exactly one PFS data read total.
  EXPECT_EQ(1u, pfs->Stats().Snapshot().read_ops);
  EXPECT_TRUE(local->Exists("data/f").value());
}

TEST(LoaderEdgeCases, MoreReadersThanFiles) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  auto spec = workload::DatasetSpec::Tiny();
  spec.num_files = 2;
  auto manifest = workload::GenerateDataset(*engine, spec);
  ASSERT_OK(manifest);

  dlsim::EngineOpener opener(engine);
  dlsim::ResourceMonitor monitor(8, 1);
  dlsim::LoaderConfig config;
  config.reader_threads = 8;  // 4x the file count
  dlsim::EpochLoader loader(manifest->file_paths, 1, opener, monitor,
                            config);
  std::uint64_t samples = 0;
  while (loader.queue().Pop().has_value()) ++samples;
  loader.Finish();
  ASSERT_OK(loader.status());
  EXPECT_EQ(spec.total_samples(), samples);
}

TEST(TrainerEdgeCases, ZeroEpochsIsANoop) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  auto manifest =
      workload::GenerateDataset(*engine, workload::DatasetSpec::Tiny());
  ASSERT_OK(manifest);
  dlsim::TrainerConfig config;
  config.epochs = 0;
  dlsim::Trainer trainer(manifest->file_paths,
                         std::make_unique<dlsim::EngineOpener>(engine),
                         config);
  auto result = trainer.Train();
  ASSERT_OK(result);
  EXPECT_TRUE(result->epochs.empty());
  EXPECT_EQ(0.0, result->total_seconds);
}

TEST(TrainerEdgeCases, BatchLargerThanDataset) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  auto manifest =
      workload::GenerateDataset(*engine, workload::DatasetSpec::Tiny());
  ASSERT_OK(manifest);
  dlsim::TrainerConfig config;
  config.epochs = 1;
  config.batch_size = 100000;
  config.model.step_time = Micros(10);
  dlsim::Trainer trainer(manifest->file_paths,
                         std::make_unique<dlsim::EngineOpener>(engine),
                         config);
  auto result = trainer.Train();
  ASSERT_OK(result);
  EXPECT_EQ(1u, result->epochs[0].steps) << "one partial batch";
}

TEST(ConfigEdgeCases, ReopenedSectionMergesKeys) {
  auto parsed = core::ParseConfig(
      "[monarch]\ndataset_dir=d\n"
      "[tier.0]\nprofile=ram\n"
      "[pfs]\nprofile=raw\nroot=/p\n"
      "[tier.0]\nquota=2KiB\n");  // reopened: adds quota to tier 0
  ASSERT_OK(parsed);
  EXPECT_EQ("ram", parsed->cache_tiers[0].profile);
  EXPECT_EQ(2048u, parsed->cache_tiers[0].quota_bytes);
}

TEST(DatasetEdgeCases, SingleFileSingleSample) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  workload::DatasetSpec spec = workload::DatasetSpec::Tiny();
  spec.num_files = 1;
  spec.samples_per_file = 1;
  auto manifest = workload::GenerateDataset(*engine, spec);
  ASSERT_OK(manifest);
  EXPECT_EQ(1u, manifest->num_files());

  tfrecord::EngineSource source(engine, manifest->file_paths[0]);
  tfrecord::TFRecordReader reader(source);
  ASSERT_OK(reader.ReadRecord());
  EXPECT_STATUS_CODE(StatusCode::kOutOfRange, reader.ReadRecord());
}

}  // namespace
}  // namespace monarch
