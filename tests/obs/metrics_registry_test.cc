#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

namespace monarch::obs {
namespace {

TEST(MetricsRegistryTest, CounterRegistersAndCounts) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.requests", "ops", "requests");
  ASSERT_NE(nullptr, counter);
  counter->Increment();
  counter->Increment(4);
  EXPECT_EQ(5u, counter->Value());
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.depth", "items", "queue depth");
  ASSERT_NE(nullptr, gauge);
  gauge->Set(10);
  gauge->Add(-3);
  EXPECT_EQ(7, gauge->Value());
}

TEST(MetricsRegistryTest, HistogramRecords) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.latency_us", "us", "latency");
  ASSERT_NE(nullptr, hist);
  hist->RecordMicros(100);
  hist->RecordMicros(200);
  const auto snap = hist->TakeSnapshot();
  EXPECT_EQ(2u, snap.count);
}

TEST(MetricsRegistryTest, SameNameSameKindReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.shared", "ops", "first");
  Counter* b = registry.GetCounter("test.shared", "ops", "second caller");
  ASSERT_NE(nullptr, a);
  EXPECT_EQ(a, b);  // two components share one process-wide counter
  a->Increment();
  EXPECT_EQ(1u, b->Value());
  EXPECT_EQ(1u, registry.instrument_count());
}

TEST(MetricsRegistryTest, DuplicateNameDifferentKindIsRejected) {
  MetricsRegistry registry;
  ASSERT_NE(nullptr, registry.GetCounter("test.clash", "ops", "a counter"));
  EXPECT_EQ(nullptr, registry.GetGauge("test.clash", "ops", "not a gauge"));
  EXPECT_EQ(nullptr,
            registry.GetHistogram("test.clash", "us", "not a histogram"));
  // The original registration is untouched.
  EXPECT_EQ(1u, registry.instrument_count());
  EXPECT_NE(nullptr, registry.GetCounter("test.clash", "ops", "a counter"));
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.concurrent", "ops", "");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(static_cast<std::uint64_t>(kThreads) * kIncrements,
            counter->Value());
}

TEST(MetricsRegistryTest, SnapshotWhileUpdatingIsConsistent) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.live", "ops", "");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) counter->Increment();
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const auto samples = registry.Snapshot();
    ASSERT_EQ(1u, samples.size());
    EXPECT_EQ("test.live", samples[0].name);
    // Counter values observed across snapshots are monotone.
    EXPECT_GE(samples[0].value, last);
    last = samples[0].value;
  }
  stop.store(true);
  writer.join();
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameAndLabel) {
  MetricsRegistry registry;
  registry.GetCounter("zzz.last", "ops", "");
  registry.GetCounter("aaa.first", "ops", "");
  auto reg = registry.AddSource([] {
    MetricSample m1;
    m1.name = "mmm.middle";
    m1.label = "b";
    MetricSample m2;
    m2.name = "mmm.middle";
    m2.label = "a";
    return std::vector<MetricSample>{m1, m2};
  });
  const auto samples = registry.Snapshot();
  ASSERT_EQ(4u, samples.size());
  EXPECT_EQ("aaa.first", samples[0].name);
  EXPECT_EQ("mmm.middle", samples[1].name);
  EXPECT_EQ("a", samples[1].label);
  EXPECT_EQ("b", samples[2].label);
  EXPECT_EQ("zzz.last", samples[3].name);
}

TEST(MetricsRegistryTest, SourceRegistrationIsRaii) {
  MetricsRegistry registry;
  {
    auto reg = registry.AddSource([] {
      MetricSample sample;
      sample.name = "test.from_source";
      sample.value = 42;
      return std::vector<MetricSample>{sample};
    });
    const auto samples = registry.Snapshot();
    ASSERT_EQ(1u, samples.size());
    EXPECT_EQ(42u, samples[0].value);
  }
  // Handle destroyed -> source gone; no dangling callback runs.
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(MetricsRegistryTest, SourceRegistrationMoveTransfersOwnership) {
  MetricsRegistry registry;
  SourceRegistration outer;
  {
    auto inner = registry.AddSource(
        [] { return std::vector<MetricSample>{MetricSample{}}; });
    outer = std::move(inner);
  }
  EXPECT_EQ(1u, registry.Snapshot().size());  // survived the inner scope
  outer.Release();
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(MetricsRegistryTest, NamesAreSortedAndUnique) {
  MetricsRegistry registry;
  registry.GetCounter("b.two", "ops", "");
  registry.GetCounter("a.one", "ops", "");
  auto reg = registry.AddSource([] {
    MetricSample m1;
    m1.name = "c.three";
    m1.label = "x";
    MetricSample m2;
    m2.name = "c.three";  // same name, second label: one catalogue entry
    m2.label = "y";
    return std::vector<MetricSample>{m1, m2};
  });
  const auto names = registry.Names();
  EXPECT_EQ((std::vector<std::string>{"a.one", "b.two", "c.three"}), names);
}

TEST(MetricsRegistryTest, PrintTextContainsEverySample) {
  MetricsRegistry registry;
  registry.GetCounter("test.printed", "ops", "help text here")->Increment(7);
  std::ostringstream os;
  registry.PrintText(os);
  const std::string text = os.str();
  EXPECT_NE(std::string::npos, text.find("test.printed"));
  EXPECT_NE(std::string::npos, text.find("7"));
  EXPECT_NE(std::string::npos, text.find("help text here"));
}

TEST(MetricsRegistryTest, PrintJsonEscapesAndNests) {
  MetricsRegistry registry;
  registry.GetCounter("test.json", "ops", "say \"hi\"");
  std::ostringstream os;
  registry.PrintJson(os);
  const std::string json = os.str();
  EXPECT_NE(std::string::npos, json.find("\"test.json\""));
  EXPECT_NE(std::string::npos, json.find("\\\"hi\\\""));  // escaped quote
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace monarch::obs
