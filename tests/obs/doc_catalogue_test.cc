// Verifies the acceptance criterion of docs/OBSERVABILITY.md: the metric
// catalogue lists EVERY metric name the registry exposes at runtime, and
// lists nothing stale. The test instantiates one of each instrumented
// component against the global registry (engines, a Monarch hierarchy, a
// Trainer), then diffs MetricsRegistry::Names() against the names in the
// doc's catalogue table — a new metric without a catalogue entry, or a
// removed metric still documented, fails here.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint_manager.h"
#include "cluster/peer_group.h"
#include "core/monarch.h"
#include "core/storage_hierarchy.h"
#include "dlsim/monarch_opener.h"
#include "dlsim/trainer.h"
#include "obs/metrics_registry.h"
#include "qos/admission.h"
#include "qos/bandwidth_broker.h"
#include "qos/tenant.h"
#include "storage/memory_engine.h"

#ifndef MONARCH_SOURCE_DIR
#error "tests/CMakeLists.txt must define MONARCH_SOURCE_DIR"
#endif

namespace monarch {
namespace {

/// Metric names from the catalogue: every `backticked.name` that starts a
/// table row (`| \`name\` | ...`) in the "## 1. Metric catalogue" section
/// of docs/OBSERVABILITY.md. Parsing stops at the next "## " heading so
/// the trace-event table in §2 (event names, not metrics) is excluded.
std::set<std::string> DocCatalogueNames() {
  const std::string path =
      std::string(MONARCH_SOURCE_DIR) + "/docs/OBSERVABILITY.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::set<std::string> names;
  std::string line;
  bool in_catalogue = false;
  while (std::getline(in, line)) {
    if (line.starts_with("## ")) {
      in_catalogue = line.find("Metric catalogue") != std::string::npos;
      continue;
    }
    if (!in_catalogue || !line.starts_with("| `")) continue;
    const std::size_t start = line.find('`') + 1;
    const std::size_t end = line.find('`', start);
    if (end == std::string::npos) continue;
    names.insert(line.substr(start, end - start));
  }
  return names;
}

/// Register every production metric by instantiating one of each
/// instrumented component, then return the registry's name set.
std::set<std::string> RuntimeNames() {
  auto pfs = std::make_shared<storage::MemoryEngine>("catalogue-pfs");
  const std::vector<std::byte> payload(512);
  EXPECT_TRUE(pfs->Write("data/f0.bin", payload).ok());

  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{
      "catalogue-ssd", std::make_shared<storage::MemoryEngine>("catalogue-ssd"),
      /*quota_bytes=*/1ull << 20});
  config.pfs = core::TierSpec{"catalogue-pfs", std::move(pfs), 0};
  config.dataset_dir = "data";
  auto monarch = core::Monarch::Create(std::move(config));
  EXPECT_TRUE(monarch.ok()) << monarch.status();

  // Read once so the serve/staging paths run (values don't matter for the
  // name diff, but a live system is the honest fixture).
  std::vector<std::byte> buffer(512);
  EXPECT_TRUE((*monarch)->Read("data/f0.bin", 0, buffer).ok());
  (*monarch)->DrainPlacements();

  // The cooperative peer cache (ISSUE 4): constructing the PeerGroup
  // registers the net.* and cluster.directory.* instruments; one resolved
  // peer read keeps the fixture live like the Monarch read above.
  cluster::PeerGroup group(2);
  auto holder = std::make_shared<storage::MemoryEngine>("catalogue-holder");
  EXPECT_TRUE(holder->Write("data/f0.bin", payload).ok());
  group.RegisterNode(0, std::make_shared<storage::MemoryEngine>("n0"));
  group.RegisterNode(1, holder);
  group.directory().MarkPlaced("data/f0.bin", 1, 0);
  auto peer_engine = group.MakePeerEngine(0);
  EXPECT_TRUE(peer_engine->Read("data/f0.bin", 0, buffer).ok());

  // Constructing a Trainer registers the trainer.* counters.
  dlsim::TrainerConfig tc;
  tc.epochs = 1;
  dlsim::Trainer trainer({},
                         std::make_unique<dlsim::MonarchOpener>(**monarch),
                         tc);

  // The write-back checkpoint tier (ISSUE 5): constructing the manager
  // registers the ckpt.* instruments; one save+flush drives the drain
  // lane so the fixture stays live.
  std::vector<core::StorageDriverPtr> ckpt_drivers;
  ckpt_drivers.push_back(std::make_unique<core::StorageDriver>(
      "ckpt-local", std::make_shared<storage::MemoryEngine>("ckpt-local"),
      /*quota_bytes=*/1ull << 20, /*read_only=*/false));
  ckpt_drivers.push_back(std::make_unique<core::StorageDriver>(
      "ckpt-pfs", std::make_shared<storage::MemoryEngine>("ckpt-pfs"), 0,
      /*read_only=*/true));
  auto ckpt_hierarchy =
      std::move(core::StorageHierarchy::Create(std::move(ckpt_drivers)))
          .value();
  ckpt::CheckpointManager ckpt_manager(*ckpt_hierarchy, {});
  EXPECT_TRUE(ckpt_manager.Save("catalogue", payload).ok());
  EXPECT_TRUE(ckpt_manager.Flush().ok());

  // Multi-tenant QoS (ISSUE 10): an enabled bandwidth broker with one
  // registered, charged tenant registers the qos.* counters and the
  // per-tenant labelled samples; one admission decision registers the
  // admission instruments.
  qos::BandwidthBroker::Options broker_options;
  broker_options.total_rate_bps = 1e9;
  qos::BandwidthBroker broker(broker_options);
  qos::TenantContext tenant;
  tenant.tenant_id = 1;
  tenant.name = "catalogue-tenant";
  broker.RegisterTenant(tenant);
  broker.Acquire(1, 512);
  qos::AdmissionController::Options admission_options;
  admission_options.capacity_bytes = 1ull << 20;
  qos::AdmissionController admission(admission_options);
  EXPECT_EQ(qos::AdmissionDecision::kAdmit, admission.Request(tenant, 512));

  const auto names = obs::MetricsRegistry::Global().Names();
  return {names.begin(), names.end()};
}

TEST(DocCatalogueTest, ObservabilityDocCoversEveryRuntimeMetric) {
  const std::set<std::string> documented = DocCatalogueNames();
  const std::set<std::string> runtime = RuntimeNames();
  ASSERT_FALSE(documented.empty());
  ASSERT_FALSE(runtime.empty());

  std::vector<std::string> undocumented;
  std::set_difference(runtime.begin(), runtime.end(), documented.begin(),
                      documented.end(), std::back_inserter(undocumented));
  EXPECT_TRUE(undocumented.empty())
      << "metrics missing from docs/OBSERVABILITY.md: " << [&] {
           std::ostringstream os;
           for (const auto& name : undocumented) os << name << " ";
           return os.str();
         }();

  std::vector<std::string> stale;
  std::set_difference(documented.begin(), documented.end(), runtime.begin(),
                      runtime.end(), std::back_inserter(stale));
  EXPECT_TRUE(stale.empty())
      << "docs/OBSERVABILITY.md documents metrics the registry does not "
         "expose: " << [&] {
           std::ostringstream os;
           for (const auto& name : stale) os << name << " ";
           return os.str();
         }();
}

}  // namespace
}  // namespace monarch
