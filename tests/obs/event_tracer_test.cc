#include "obs/event_tracer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "obs/json.h"

namespace monarch::obs {
namespace {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser, just enough to round-trip the
// exporter's output and prove it is structurally valid Chrome trace JSON.
// Throws std::runtime_error on malformed input (failing the test).
// ---------------------------------------------------------------------
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonObject>, std::shared_ptr<JsonArray>>
      value;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(value);
  }
  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(value);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(value);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(value);
  }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(value);
  }
  [[nodiscard]] double num() const { return std::get<double>(value); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("JSON error at " + std::to_string(pos_) + ": " +
                             what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) Fail("unexpected end");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return JsonValue{ParseString()};
      case 't': Literal("true"); return JsonValue{true};
      case 'f': Literal("false"); return JsonValue{false};
      case 'n': Literal("null"); return JsonValue{nullptr};
      default: return ParseNumber();
    }
  }

  void Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) Fail("bad literal");
    pos_ += word.size();
  }

  JsonValue ParseObject() {
    Expect('{');
    auto object = std::make_shared<JsonObject>();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue{object};
    }
    while (true) {
      std::string key = ParseString();
      Expect(':');
      (*object)[std::move(key)] = ParseValue();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return JsonValue{object};
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    auto array = std::make_shared<JsonArray>();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue{array};
    }
    while (true) {
      array->push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return JsonValue{array};
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("short \\u escape");
          const unsigned code =
              static_cast<unsigned>(std::stoul(
                  std::string(text_.substr(pos_, 4)), nullptr, 16));
          pos_ += 4;
          out.push_back(static_cast<char>(code));  // ASCII range only
          break;
        }
        default: Fail("unknown escape");
      }
    }
    Expect('"');
    return out;
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) Fail("bad number");
    return JsonValue{std::stod(std::string(text_.substr(start, pos_ - start)))};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Export `tracer` and parse the document, returning the traceEvents.
JsonArray ExportedEvents(const EventTracer& tracer) {
  std::ostringstream os;
  tracer.ExportChromeJson(os);
  JsonValue document = JsonParser(os.str()).Parse();
  EXPECT_TRUE(document.is_object());
  const JsonObject& root = document.object();
  EXPECT_EQ("ms", root.at("displayTimeUnit").str());
  EXPECT_TRUE(root.at("traceEvents").is_array());
  return root.at("traceEvents").array();
}

const JsonObject* FindEvent(const JsonArray& events, const std::string& name) {
  for (const JsonValue& event : events) {
    if (event.object().at("name").str() == name) return &event.object();
  }
  return nullptr;
}

// ---------------------------------------------------------------------

TEST(EventTracerTest, DisabledTracerRecordsNothing) {
  EventTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.RecordComplete("ignored", "test", 0, 1);
  tracer.RecordInstant("ignored", "test");
  { TraceSpan span(tracer, "ignored", "test"); EXPECT_FALSE(span.active()); }
  EXPECT_EQ(0u, tracer.recorded_events());
}

TEST(EventTracerTest, RecordsWhenEnabled) {
  EventTracer tracer;
  tracer.Enable();
  tracer.RecordComplete("op", "test", 10, 5);
  tracer.RecordInstant("marker", "test");
  EXPECT_EQ(2u, tracer.recorded_events());
  EXPECT_EQ(0u, tracer.dropped_events());
  tracer.Disable();
  EXPECT_EQ(2u, tracer.recorded_events());  // still exportable
}

TEST(EventTracerTest, SpanNestingIsContained) {
  EventTracer tracer;
  tracer.Enable();
  {
    TraceSpan outer(tracer, "outer", "test");
    ASSERT_TRUE(outer.active());
    {
      TraceSpan inner(tracer, "inner", "test");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  tracer.Disable();

  const JsonArray events = ExportedEvents(tracer);
  const JsonObject* outer = FindEvent(events, "outer");
  const JsonObject* inner = FindEvent(events, "inner");
  ASSERT_NE(nullptr, outer);
  ASSERT_NE(nullptr, inner);
  EXPECT_EQ("X", outer->at("ph").str());
  // The inner span starts no earlier and ends no later than the outer.
  EXPECT_GE(inner->at("ts").num(), outer->at("ts").num());
  EXPECT_LE(inner->at("ts").num() + inner->at("dur").num(),
            outer->at("ts").num() + outer->at("dur").num());
  // Same thread -> same tid.
  EXPECT_EQ(outer->at("tid").num(), inner->at("tid").num());
}

TEST(EventTracerTest, RingOverflowDropsOldestAndCountsDrops) {
  EventTracer tracer;
  tracer.Enable(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.RecordInstant("e" + std::to_string(i), "test");
  }
  tracer.Disable();
  EXPECT_EQ(4u, tracer.recorded_events());
  EXPECT_EQ(6u, tracer.dropped_events());

  const JsonArray events = ExportedEvents(tracer);
  // The last four events survive; the oldest six were overwritten.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(nullptr, FindEvent(events, "e" + std::to_string(i)));
  }
  std::vector<std::string> survivors;
  for (int i = 6; i < 10; ++i) {
    const std::string name = "e" + std::to_string(i);
    ASSERT_NE(nullptr, FindEvent(events, name));
    survivors.push_back(name);
  }
  // And the export reports the drop count as a metadata instant.
  const JsonObject* drops = FindEvent(events, "trace.dropped_events");
  ASSERT_NE(nullptr, drops);
  EXPECT_EQ(6, drops->at("args").object().at("count").num());
}

TEST(EventTracerTest, ExportIsValidChromeTraceJsonWithArgs) {
  EventTracer tracer;
  tracer.Enable();
  tracer.RecordComplete("read", "storage", 100, 25,
                        "\"file\":" + JsonQuote("dir/a \"quoted\" name\n"));
  tracer.Disable();

  const JsonArray events = ExportedEvents(tracer);
  const JsonObject* read = FindEvent(events, "read");
  ASSERT_NE(nullptr, read);
  EXPECT_EQ("storage", read->at("cat").str());
  EXPECT_EQ("X", read->at("ph").str());
  EXPECT_EQ(100, read->at("ts").num());
  EXPECT_EQ(25, read->at("dur").num());
  EXPECT_EQ(1, read->at("pid").num());
  EXPECT_GE(read->at("tid").num(), 1);
  // Args survive the escape/parse round trip byte-for-byte.
  EXPECT_EQ("dir/a \"quoted\" name\n",
            read->at("args").object().at("file").str());
}

TEST(EventTracerTest, ExportToFileRoundTrips) {
  EventTracer tracer;
  tracer.Enable();
  tracer.RecordInstant("file.marker", "test");
  tracer.Disable();

  const auto path = std::filesystem::temp_directory_path() /
                    ("monarch_trace_test_" + std::to_string(::getpid()) +
                     ".json");
  ASSERT_TRUE(tracer.ExportChromeJsonToFile(path.string()).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  std::filesystem::remove(path);

  const JsonValue document = JsonParser(text.str()).Parse();
  ASSERT_TRUE(document.is_object());
  EXPECT_NE(nullptr,
            FindEvent(document.object().at("traceEvents").array(),
                      "file.marker"));
}

TEST(EventTracerTest, ThreadsGetDistinctTids) {
  EventTracer tracer;
  tracer.Enable();
  std::thread t1([&] { tracer.RecordInstant("thread1", "test"); });
  std::thread t2([&] { tracer.RecordInstant("thread2", "test"); });
  t1.join();
  t2.join();
  tracer.Disable();

  const JsonArray events = ExportedEvents(tracer);
  const JsonObject* e1 = FindEvent(events, "thread1");
  const JsonObject* e2 = FindEvent(events, "thread2");
  ASSERT_NE(nullptr, e1);
  ASSERT_NE(nullptr, e2);
  EXPECT_NE(e1->at("tid").num(), e2->at("tid").num());
}

TEST(EventTracerTest, ReEnableClearsPreviousEpoch) {
  EventTracer tracer;
  tracer.Enable();
  tracer.RecordInstant("old", "test");
  tracer.Enable();  // new epoch: old events and drops are discarded
  tracer.RecordInstant("new", "test");
  tracer.Disable();
  EXPECT_EQ(1u, tracer.recorded_events());
  const JsonArray events = ExportedEvents(tracer);
  EXPECT_EQ(nullptr, FindEvent(events, "old"));
  EXPECT_NE(nullptr, FindEvent(events, "new"));
}

TEST(EventTracerTest, ConcurrentRecordAndExportIsSafe) {
  EventTracer tracer;
  tracer.Enable(/*events_per_thread=*/256);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      tracer.RecordInstant("spin", "test");
      if (++i > 100000) break;
    }
  });
  for (int i = 0; i < 20; ++i) {
    std::ostringstream os;
    tracer.ExportChromeJson(os);  // must not crash or deadlock vs writer
    EXPECT_FALSE(os.str().empty());
  }
  stop.store(true);
  writer.join();
  tracer.Disable();
}

}  // namespace
}  // namespace monarch::obs
