#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

namespace monarch {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(100, counter.load());
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(1u, pool.num_threads());
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Drain();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, AsyncReturnsFutureWithResult) {
  ThreadPool pool(2);
  auto future = pool.Async([] { return 6 * 7; });
  EXPECT_EQ(42, future.get());
}

TEST(ThreadPoolTest, AsyncPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DrainWaitsForInFlightWork) {
  ThreadPool pool(2);
  std::atomic<int> finished{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&finished] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      finished.fetch_add(1);
    });
  }
  pool.Drain();
  EXPECT_EQ(8, finished.load());
}

TEST(ThreadPoolTest, DrainOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Drain();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ShutdownFinishesQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        counter.fetch_add(1);
      });
    }
    pool.Shutdown();  // queued tasks still run to completion
  }
  EXPECT_EQ(20, counter.load());
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> rendezvous{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      rendezvous.fetch_add(1);
      // Hold each worker until all four tasks have started, forcing the
      // pool to actually use four distinct threads.
      while (rendezvous.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.Drain();
  EXPECT_EQ(4u, seen.size());
}

TEST(ThreadPoolTest, FifoOrderWithSingleWorker) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Drain();
  ASSERT_EQ(10u, order.size());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(i, order[static_cast<size_t>(i)]);
}

TEST(ThreadPoolTest, QueueDepthReflectsBacklog) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.Submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  // Give the worker a moment to pick up the blocking task.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pool.Submit([] {});
  pool.Submit([] {});
  EXPECT_EQ(2u, pool.QueueDepth());
  release.store(true);
  pool.Drain();
  EXPECT_EQ(0u, pool.QueueDepth());
}

}  // namespace
}  // namespace monarch
