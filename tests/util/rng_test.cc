#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace monarch {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(0, same);
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  EXPECT_EQ(0u, Xoshiro256::min());
  EXPECT_EQ(UINT64_MAX, Xoshiro256::max());
}

TEST(Xoshiro256Test, ReproducibleStreams) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro256Test, NextDoubleRoughlyUniform) {
  Xoshiro256 rng(9);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(0.5, sum / kN, 0.01);
}

TEST(Xoshiro256Test, NextBoundedStaysInBound) {
  Xoshiro256 rng(3);
  for (const std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Xoshiro256Test, NextBoundedZeroIsZero) {
  Xoshiro256 rng(3);
  EXPECT_EQ(0u, rng.NextBounded(0));
}

TEST(Xoshiro256Test, NextBoundedCoversAllResidues) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(10u, seen.size());
}

TEST(Xoshiro256Test, WorksWithStdShuffleDeterministically) {
  std::vector<int> v1(50);
  std::vector<int> v2(50);
  std::iota(v1.begin(), v1.end(), 0);
  std::iota(v2.begin(), v2.end(), 0);
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  std::shuffle(v1.begin(), v1.end(), a);
  std::shuffle(v2.begin(), v2.end(), b);
  EXPECT_EQ(v1, v2);
  std::vector<int> sorted = v1;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(expected, sorted) << "shuffle must be a permutation";
}

}  // namespace
}  // namespace monarch
