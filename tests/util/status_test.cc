#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

#include "../test_support.h"

namespace monarch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(StatusCode::kOk, status.code());
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ("OK", status.ToString());
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(StatusCode::kNotFound, NotFoundError("x").code());
  EXPECT_EQ(StatusCode::kAlreadyExists, AlreadyExistsError("x").code());
  EXPECT_EQ(StatusCode::kOutOfRange, OutOfRangeError("x").code());
  EXPECT_EQ(StatusCode::kResourceExhausted,
            ResourceExhaustedError("x").code());
  EXPECT_EQ(StatusCode::kFailedPrecondition,
            FailedPreconditionError("x").code());
  EXPECT_EQ(StatusCode::kUnavailable, UnavailableError("x").code());
  EXPECT_EQ(StatusCode::kDataLoss, DataLossError("x").code());
  EXPECT_EQ(StatusCode::kInvalidArgument, InvalidArgumentError("x").code());
  EXPECT_EQ(StatusCode::kInternal, InternalError("x").code());

  const Status status = NotFoundError("dataset/file-004");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ("dataset/file-004", status.message());
  EXPECT_EQ("NOT_FOUND: dataset/file-004", status.ToString());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ("OK", StatusCodeName(StatusCode::kOk));
  EXPECT_EQ("DATA_LOSS", StatusCodeName(StatusCode::kDataLoss));
  EXPECT_EQ("RESOURCE_EXHAUSTED",
            StatusCodeName(StatusCode::kResourceExhausted));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(42, result.value());
  EXPECT_EQ(42, *result);
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(42, result.value_or(0));
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result = NotFoundError("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(StatusCode::kNotFound, result.status().code());
  EXPECT_EQ(7, result.value_or(7));
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(9));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(9, *owned);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(5u, result->size());
}

Status FailIfNegative(int v) {
  if (v < 0) return InvalidArgumentError("negative");
  return Status::Ok();
}

Result<int> DoubleIfPositive(int v) {
  MONARCH_RETURN_IF_ERROR(FailIfNegative(v));
  return v * 2;
}

Result<int> ChainThroughMacro(int v) {
  MONARCH_ASSIGN_OR_RETURN(const int doubled, DoubleIfPositive(v));
  return doubled + 1;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_OK(DoubleIfPositive(2));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument, DoubleIfPositive(-1));
}

TEST(StatusMacrosTest, AssignOrReturnBindsAndPropagates) {
  auto ok = ChainThroughMacro(5);
  ASSERT_OK(ok);
  EXPECT_EQ(11, ok.value());
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument, ChainThroughMacro(-5));
}

}  // namespace
}  // namespace monarch
