#include "util/sharded_map.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace monarch {
namespace {

TEST(ShardedMapTest, InsertFindErase) {
  ShardedMap<std::string, int> map;
  EXPECT_TRUE(map.Insert("a", 1));
  EXPECT_FALSE(map.Insert("a", 2)) << "duplicate insert must fail";
  EXPECT_EQ(1, map.Find("a").value());
  EXPECT_FALSE(map.Find("missing").has_value());
  EXPECT_TRUE(map.Contains("a"));
  EXPECT_TRUE(map.Erase("a"));
  EXPECT_FALSE(map.Erase("a"));
  EXPECT_FALSE(map.Contains("a"));
}

TEST(ShardedMapTest, InsertOrAssignOverwrites) {
  ShardedMap<std::string, int> map;
  map.InsertOrAssign("k", 1);
  map.InsertOrAssign("k", 2);
  EXPECT_EQ(2, map.Find("k").value());
  EXPECT_EQ(1u, map.Size());
}

TEST(ShardedMapTest, UpdateMutatesInPlace) {
  ShardedMap<std::string, int> map;
  map.Insert("k", 10);
  EXPECT_TRUE(map.Update("k", [](int& v) { v += 5; }));
  EXPECT_EQ(15, map.Find("k").value());
  EXPECT_FALSE(map.Update("absent", [](int&) { FAIL(); }));
}

TEST(ShardedMapTest, SizeAndClearSpanShards) {
  ShardedMap<int, int> map(8);
  for (int i = 0; i < 1000; ++i) map.Insert(i, i);
  EXPECT_EQ(1000u, map.Size());
  EXPECT_FALSE(map.Empty());
  map.Clear();
  EXPECT_TRUE(map.Empty());
}

TEST(ShardedMapTest, ShardCountRoundsUpToPowerOfTwo) {
  ShardedMap<int, int> map(5);
  EXPECT_EQ(8u, map.shard_count());
  ShardedMap<int, int> one(1);
  EXPECT_EQ(1u, one.shard_count());
}

TEST(ShardedMapTest, ForEachVisitsEveryEntry) {
  ShardedMap<int, int> map;
  int expected_sum = 0;
  for (int i = 0; i < 100; ++i) {
    map.Insert(i, i * 2);
    expected_sum += i * 2;
  }
  int sum = 0;
  std::size_t visits = 0;
  map.ForEach([&](const int&, const int& v) {
    sum += v;
    ++visits;
  });
  EXPECT_EQ(expected_sum, sum);
  EXPECT_EQ(100u, visits);
}

TEST(ShardedMapTest, ConcurrentInsertsAreAllRetained) {
  ShardedMap<int, int> map(16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (int i = 0; i < kPerThread; ++i) {
        map.Insert(t * kPerThread + i, i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(static_cast<std::size_t>(kThreads * kPerThread), map.Size());
}

TEST(ShardedMapTest, ConcurrentReadersDuringWrites) {
  ShardedMap<int, int> map(16);
  for (int i = 0; i < 1000; ++i) map.Insert(i, i);

  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 1000; i += 37) {
          if (auto v = map.Find(i); v.has_value()) {
            EXPECT_EQ(i, *v % 100000);
            hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int i = 1000; i < 3000; ++i) map.Insert(i, i);
  for (auto& t : readers) t.join();
  EXPECT_GT(hits.load(), 0u);
  EXPECT_EQ(3000u, map.Size());
}

}  // namespace
}  // namespace monarch
