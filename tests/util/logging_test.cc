#include "util/logging.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace monarch {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarning); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(LogLevel::kDebug, GetLogLevel());
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(LogLevel::kError, GetLogLevel());
}

TEST_F(LoggingTest, EnabledMacroRespectsLevel) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(MONARCH_LOG_ENABLED(LogLevel::kDebug));
  EXPECT_FALSE(MONARCH_LOG_ENABLED(LogLevel::kInfo));
  EXPECT_TRUE(MONARCH_LOG_ENABLED(LogLevel::kWarning));
  EXPECT_TRUE(MONARCH_LOG_ENABLED(LogLevel::kError));
}

TEST_F(LoggingTest, FilteredMessagesSkipArgumentEvaluation) {
  // The if/else macro puts the streamed expression in the else branch,
  // so a filtered message costs nothing — not even argument evaluation.
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 42;
  };
  MLOG_DEBUG << "value " << count();
  EXPECT_EQ(0, evaluations);
  SetLogLevel(LogLevel::kDebug);
  // (Enabled messages do evaluate; emit to a high level so test output
  // stays clean is not possible here, so accept one debug line.)
  MLOG_DEBUG << "value " << count();
  EXPECT_EQ(1, evaluations);
}

TEST_F(LoggingTest, ConcurrentLoggingDoesNotCrash) {
  SetLogLevel(LogLevel::kError);  // keep test output clean
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        MLOG_DEBUG << "suppressed " << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

TEST_F(LoggingTest, ErrorMessagesEmitWithoutCrash) {
  SetLogLevel(LogLevel::kError);
  MLOG_ERROR << "expected test error line (ignore): " << 123;
  SUCCEED();
}

}  // namespace
}  // namespace monarch
