#include "util/rate_limiter.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/clock.h"

namespace monarch {
namespace {

TEST(RateLimiterTest, BurstPassesImmediately) {
  RateLimiter limiter(/*rate=*/1000.0, /*burst=*/100.0);
  EXPECT_EQ(kZeroDuration, limiter.Reserve(50.0));
  EXPECT_EQ(kZeroDuration, limiter.Reserve(50.0));
}

TEST(RateLimiterTest, DeficitProducesProportionalWait) {
  RateLimiter limiter(/*rate=*/1000.0, /*burst=*/10.0);
  limiter.Acquire(10.0);  // exhaust burst
  // 500 tokens over at 1000/s -> ~0.5 s wait.
  const Duration wait = limiter.Reserve(500.0);
  EXPECT_NEAR(0.5, ToSeconds(wait), 0.05);
}

TEST(RateLimiterTest, ZeroTokensFree) {
  RateLimiter limiter(100.0);
  EXPECT_EQ(kZeroDuration, limiter.Reserve(0.0));
  EXPECT_EQ(kZeroDuration, limiter.Reserve(-5.0));
}

TEST(RateLimiterTest, RefillsOverTime) {
  RateLimiter limiter(/*rate=*/10000.0, /*burst=*/100.0);
  limiter.Acquire(100.0);
  PreciseSleep(Millis(20));  // refills ~200 tokens, capped at burst=100
  EXPECT_EQ(kZeroDuration, limiter.Reserve(90.0));
}

TEST(RateLimiterTest, SetRateTakesEffect) {
  RateLimiter limiter(/*rate=*/100.0, /*burst=*/1.0);
  limiter.SetRate(10000.0);
  EXPECT_DOUBLE_EQ(10000.0, limiter.rate_per_sec());
  limiter.Acquire(1.0);
  const Duration wait = limiter.Reserve(100.0);
  // 100 tokens at 10000/s -> ~10ms, not ~1s.
  EXPECT_LT(ToSeconds(wait), 0.1);
}

TEST(RateLimiterTest, SustainedThroughputMatchesRate) {
  // Acquire 40 x 25 tokens at rate 5000/s: ideal time 0.2s (minus burst).
  RateLimiter limiter(/*rate=*/5000.0, /*burst=*/25.0);
  const Stopwatch timer;
  for (int i = 0; i < 40; ++i) limiter.Acquire(25.0);
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.12);
  EXPECT_LT(elapsed, 0.40);
}

TEST(RateLimiterTest, ConcurrentAcquirersShareTheRate) {
  RateLimiter limiter(/*rate=*/10000.0, /*burst=*/100.0);
  const Stopwatch timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&limiter] {
      for (int i = 0; i < 10; ++i) limiter.Acquire(50.0);
    });
  }
  for (auto& t : threads) t.join();
  // 2000 tokens total at 10000/s -> >= ~0.19s regardless of thread count.
  EXPECT_GT(timer.ElapsedSeconds(), 0.12);
}

TEST(RateLimiterTest, BurstCapClampsIdleRefill) {
  RateLimiter limiter(/*rate=*/100000.0, /*burst=*/50.0);
  limiter.Acquire(50.0);      // drain the bucket
  PreciseSleep(Millis(50));   // would refill 5000 tokens uncapped
  // Only the 50-token cap survives the idle period: the first 50 are
  // free, the next request immediately owes debt.
  EXPECT_EQ(kZeroDuration, limiter.Reserve(50.0));
  EXPECT_GT(limiter.Reserve(50.0), kZeroDuration);
}

TEST(RateLimiterTest, DefaultBurstIsTwentiethOfRate) {
  RateLimiter limiter(/*rate=*/2000.0);  // default burst = 100 tokens
  EXPECT_EQ(kZeroDuration, limiter.Reserve(100.0));
  // The bucket is now empty (modulo a sliver of refill); the next 100
  // tokens owe close to a full bucket of debt at 2000/s -> ~50ms.
  EXPECT_GT(ToSeconds(limiter.Reserve(100.0)), 0.02);
}

TEST(RateLimiterTest, RefillRoundingAccumulatesSmallSlices) {
  // Many sub-token reservations must not each round their refill down
  // to zero: 200 x 0.5 tokens at 1000/s is 0.1s of work, not 100 stalls.
  RateLimiter limiter(/*rate=*/1000.0, /*burst=*/1.0);
  limiter.Acquire(1.0);  // exhaust burst
  const Stopwatch timer;
  for (int i = 0; i < 200; ++i) limiter.Acquire(0.5);
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.05);
  EXPECT_LT(elapsed, 0.5);
}

TEST(RateLimiterTest, SetRateRescalesDefaultBurstAndClampsBalance) {
  // Defaulted burst (rate/20 = 5000 tokens) must shrink with a big
  // rate-down, and the already-banked balance must be clamped to it —
  // otherwise every rate change leaves a stale free bucket behind (the
  // per-tenant QoS limiters are re-rated constantly).
  RateLimiter limiter(/*rate=*/100000.0);
  limiter.SetRate(1000.0);  // new default burst: 50 tokens
  EXPECT_EQ(kZeroDuration, limiter.Reserve(50.0));
  const Duration wait = limiter.Reserve(200.0);
  EXPECT_GT(ToSeconds(wait), 0.1);  // ~200/1000 s of debt, not free
}

TEST(RateLimiterTest, SetRateKeepsExplicitBurst) {
  RateLimiter limiter(/*rate=*/1000.0, /*burst=*/500.0);
  limiter.SetRate(100.0);  // explicit burst is the caller's contract
  EXPECT_EQ(kZeroDuration, limiter.Reserve(500.0));
}

TEST(RateLimiterTest, ConcurrentAcquirersSeeRateChange) {
  // Four threads grind through a slow bucket while the rate is raised
  // 100x mid-flight: the whole run must finish far sooner than the old
  // rate would allow, and the debt model must not lose tokens.
  RateLimiter limiter(/*rate=*/1000.0, /*burst=*/10.0);
  const Stopwatch timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&limiter] {
      for (int i = 0; i < 10; ++i) limiter.Acquire(100.0);
    });
  }
  PreciseSleep(Millis(50));
  limiter.SetRate(100000.0);
  for (auto& t : threads) t.join();
  // 4000 tokens at the old 1000/s would take ~4s; after the bump the
  // remainder drains at 100000/s, so well under 2s total.
  EXPECT_LT(timer.ElapsedSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(100000.0, limiter.rate_per_sec());
}

}  // namespace
}  // namespace monarch
