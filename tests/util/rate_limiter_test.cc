#include "util/rate_limiter.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/clock.h"

namespace monarch {
namespace {

TEST(RateLimiterTest, BurstPassesImmediately) {
  RateLimiter limiter(/*rate=*/1000.0, /*burst=*/100.0);
  EXPECT_EQ(kZeroDuration, limiter.Reserve(50.0));
  EXPECT_EQ(kZeroDuration, limiter.Reserve(50.0));
}

TEST(RateLimiterTest, DeficitProducesProportionalWait) {
  RateLimiter limiter(/*rate=*/1000.0, /*burst=*/10.0);
  limiter.Acquire(10.0);  // exhaust burst
  // 500 tokens over at 1000/s -> ~0.5 s wait.
  const Duration wait = limiter.Reserve(500.0);
  EXPECT_NEAR(0.5, ToSeconds(wait), 0.05);
}

TEST(RateLimiterTest, ZeroTokensFree) {
  RateLimiter limiter(100.0);
  EXPECT_EQ(kZeroDuration, limiter.Reserve(0.0));
  EXPECT_EQ(kZeroDuration, limiter.Reserve(-5.0));
}

TEST(RateLimiterTest, RefillsOverTime) {
  RateLimiter limiter(/*rate=*/10000.0, /*burst=*/100.0);
  limiter.Acquire(100.0);
  PreciseSleep(Millis(20));  // refills ~200 tokens, capped at burst=100
  EXPECT_EQ(kZeroDuration, limiter.Reserve(90.0));
}

TEST(RateLimiterTest, SetRateTakesEffect) {
  RateLimiter limiter(/*rate=*/100.0, /*burst=*/1.0);
  limiter.SetRate(10000.0);
  EXPECT_DOUBLE_EQ(10000.0, limiter.rate_per_sec());
  limiter.Acquire(1.0);
  const Duration wait = limiter.Reserve(100.0);
  // 100 tokens at 10000/s -> ~10ms, not ~1s.
  EXPECT_LT(ToSeconds(wait), 0.1);
}

TEST(RateLimiterTest, SustainedThroughputMatchesRate) {
  // Acquire 40 x 25 tokens at rate 5000/s: ideal time 0.2s (minus burst).
  RateLimiter limiter(/*rate=*/5000.0, /*burst=*/25.0);
  const Stopwatch timer;
  for (int i = 0; i < 40; ++i) limiter.Acquire(25.0);
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.12);
  EXPECT_LT(elapsed, 0.40);
}

TEST(RateLimiterTest, ConcurrentAcquirersShareTheRate) {
  RateLimiter limiter(/*rate=*/10000.0, /*burst=*/100.0);
  const Stopwatch timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&limiter] {
      for (int i = 0; i < 10; ++i) limiter.Acquire(50.0);
    });
  }
  for (auto& t : threads) t.join();
  // 2000 tokens total at 10000/s -> >= ~0.19s regardless of thread count.
  EXPECT_GT(timer.ElapsedSeconds(), 0.12);
}

}  // namespace
}  // namespace monarch
