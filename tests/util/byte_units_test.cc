#include "util/byte_units.h"

#include <gtest/gtest.h>

#include "../test_support.h"

namespace monarch {
namespace {

using namespace monarch::literals;

TEST(ByteUnitsTest, LiteralsScaleBinary) {
  EXPECT_EQ(1024ULL, 1_KiB);
  EXPECT_EQ(1024ULL * 1024, 1_MiB);
  EXPECT_EQ(1024ULL * 1024 * 1024, 1_GiB);
  EXPECT_EQ(115ULL * 1024 * 1024, 115_MiB);
}

TEST(ParseByteSizeTest, PlainNumbersAreBytes) {
  auto parsed = ParseByteSize("512");
  ASSERT_OK(parsed);
  EXPECT_EQ(512u, parsed.value());
}

TEST(ParseByteSizeTest, BinarySuffixes) {
  EXPECT_EQ(64_KiB, ParseByteSize("64KiB").value());
  EXPECT_EQ(100_MiB, ParseByteSize("100 MiB").value());
  EXPECT_EQ(2_GiB, ParseByteSize("2GiB").value());
  EXPECT_EQ(1_KiB, ParseByteSize("1kib").value());  // case-insensitive
  EXPECT_EQ(3_MiB, ParseByteSize("3M").value());     // short form
  EXPECT_EQ(7u, ParseByteSize("7B").value());
}

TEST(ParseByteSizeTest, FractionalValuesRoundDown) {
  EXPECT_EQ(1536u, ParseByteSize("1.5KiB").value());
  EXPECT_EQ(static_cast<std::uint64_t>(2.5 * 1024 * 1024),
            ParseByteSize("2.5 MiB").value());
}

TEST(ParseByteSizeTest, SurroundingWhitespaceIgnored) {
  EXPECT_EQ(1_MiB, ParseByteSize("  1MiB  ").value());
}

TEST(ParseByteSizeTest, RejectsGarbage) {
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument, ParseByteSize(""));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument, ParseByteSize("MiB"));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument, ParseByteSize("10XB"));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument, ParseByteSize("-5MiB"));
}

TEST(FormatByteSizeTest, PicksHumanUnit) {
  EXPECT_EQ("512 B", FormatByteSize(512));
  EXPECT_EQ("1.0 KiB", FormatByteSize(1024));
  EXPECT_EQ("100.0 MiB", FormatByteSize(100_MiB));
  EXPECT_EQ("1.5 GiB", FormatByteSize(1536_MiB));
}

TEST(FormatByteSizeTest, RoundTripsThroughParse) {
  for (const std::uint64_t v : {1_KiB, 64_KiB, 100_MiB, 2_GiB}) {
    auto parsed = ParseByteSize(FormatByteSize(v));
    ASSERT_OK(parsed);
    EXPECT_EQ(v, parsed.value());
  }
}

}  // namespace
}  // namespace monarch
