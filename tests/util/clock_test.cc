#include "util/clock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace monarch {
namespace {

TEST(DurationHelpersTest, ConversionsAgree) {
  EXPECT_EQ(Micros(1000), Millis(1));
  EXPECT_DOUBLE_EQ(0.002, ToSeconds(Millis(2)));
  EXPECT_EQ(Millis(1500), FromSeconds(1.5));
  EXPECT_EQ(kZeroDuration, FromSeconds(0.0));
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch timer;
  PreciseSleep(Millis(10));
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.009);
  EXPECT_LT(elapsed, 0.2);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch timer;
  PreciseSleep(Millis(5));
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.004);
}

TEST(PreciseSleepTest, NonPositiveReturnsImmediately) {
  Stopwatch timer;
  PreciseSleep(kZeroDuration);
  PreciseSleep(Millis(-5));
  EXPECT_LT(timer.ElapsedSeconds(), 0.002);
}

TEST(PreciseSleepTest, SubMillisecondAccuracy) {
  // The device models rely on short sleeps not overshooting wildly. Take
  // the MEDIAN of several trials so a CI machine that deschedules us
  // mid-trial (this suite runs alongside the bench harness) cannot flake
  // the bound.
  constexpr int kTrials = 9;
  constexpr int kIterations = 20;
  std::vector<double> per_sleep(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    const Stopwatch timer;
    for (int i = 0; i < kIterations; ++i) {
      PreciseSleep(Micros(100));
    }
    per_sleep[static_cast<std::size_t>(t)] =
        timer.ElapsedSeconds() / kIterations;
  }
  // Judge the BEST trial: under `ctest -j` the machine is saturated and
  // most trials get descheduled mid-sleep, but at least one trial lands
  // in a clean scheduling window — and that one shows the sleeper's true
  // accuracy. (The lower bound applies to every trial by construction.)
  const double best = *std::min_element(per_sleep.begin(), per_sleep.end());
  EXPECT_GE(best, 100e-6 * 0.9);
  // Regression guard only: a broken implementation (e.g. rounding every
  // wait up to a timer tick) lands in the milliseconds. The bound is
  // deliberately loose because this suite shares the machine with
  // sanitizer and bench runs that can deschedule even the best trial.
  EXPECT_LT(best, 100e-6 * 100);
}

TEST(PreciseSleepTest, LongSleepUsesBlockingWait) {
  const Stopwatch timer;
  PreciseSleep(Millis(20));
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.019);
  EXPECT_LT(elapsed, 0.2);
}

}  // namespace
}  // namespace monarch
