#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace monarch {
namespace {

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ("3.1", Table::Num(3.14159));
  EXPECT_EQ("3.142", Table::Num(3.14159, 3));
  EXPECT_EQ("-2.0", Table::Num(-2.0));
}

TEST(TableTest, PctFormatsFraction) {
  EXPECT_EQ("45.0%", Table::Pct(0.45));
  EXPECT_EQ("7.25%", Table::Pct(0.0725, 2));
}

TEST(TableTest, AsciiAlignsColumns) {
  Table table({"model", "time"});
  table.AddRow({"lenet", "1205"});
  table.AddRow({"resnet50", "9"});
  std::ostringstream os;
  table.PrintAscii(os);
  const std::string out = os.str();
  EXPECT_NE(std::string::npos, out.find("| model    |"));
  EXPECT_NE(std::string::npos, out.find("| lenet    |"));
  EXPECT_NE(std::string::npos, out.find("| resnet50 |"));
  // Header separator lines: top, under header, bottom.
  std::size_t separators = 0;
  for (std::size_t pos = out.find("+--"); pos != std::string::npos;
       pos = out.find("+--", pos + 1)) {
    ++separators;
  }
  EXPECT_GE(separators, 3u);
}

TEST(TableTest, CsvMatchesRows) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ("a,b\n1,2\n3,4\n", os.str());
  EXPECT_EQ(2u, table.row_count());
}

TEST(TableTest, BannerWrapsTitle) {
  std::ostringstream os;
  PrintBanner(os, "Figure 3");
  EXPECT_EQ("\n==== Figure 3 ====\n", os.str());
}

}  // namespace
}  // namespace monarch
