#include "util/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "util/clock.h"

namespace monarch {
namespace {

TEST(BoundedQueueTest, PushPopSingleThread) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_EQ(1, queue.Pop().value());
  EXPECT_EQ(2, queue.Pop().value());
}

TEST(BoundedQueueTest, CapacityAtLeastOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(1u, queue.capacity());
}

TEST(BoundedQueueTest, TryPopOnEmptyReturnsNullopt) {
  BoundedQueue<int> queue(2);
  EXPECT_FALSE(queue.TryPop().has_value());
  queue.Push(9);
  EXPECT_EQ(9, queue.TryPop().value());
}

TEST(BoundedQueueTest, PushBlocksWhenFull) {
  BoundedQueue<int> queue(1);
  queue.Push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.Push(2);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load()) << "push must block while the queue is full";
  EXPECT_EQ(1, queue.Pop().value());
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(2, queue.Pop().value());
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> queue(2);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.Push(7);
  });
  EXPECT_EQ(7, queue.Pop().value());  // blocks until the producer runs
  producer.join();
}

TEST(BoundedQueueTest, CloseDrainsRemainingItemsThenEnds) {
  BoundedQueue<int> queue(4);
  queue.Push(1);
  queue.Push(2);
  queue.Close();
  EXPECT_EQ(1, queue.Pop().value());
  EXPECT_EQ(2, queue.Pop().value());
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueueTest, PushAfterCloseFails) {
  BoundedQueue<int> queue(2);
  queue.Close();
  EXPECT_FALSE(queue.Push(1));
}

TEST(BoundedQueueTest, CloseReleasesBlockedProducer) {
  BoundedQueue<int> queue(1);
  queue.Push(1);
  std::thread producer([&] { EXPECT_FALSE(queue.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
}

TEST(BoundedQueueTest, CloseReleasesBlockedConsumer) {
  BoundedQueue<int> queue(1);
  std::thread consumer([&] { EXPECT_FALSE(queue.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  consumer.join();
}

TEST(BoundedQueueTest, MpmcDeliversEveryItemExactlyOnce) {
  BoundedQueue<int> queue(16);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 5000;

  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.Pop()) {
        consumed_sum.fetch_add(*item, std::memory_order_relaxed);
        consumed_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(n, consumed_count.load());
  EXPECT_EQ(n * (n - 1) / 2, consumed_sum.load());
}

}  // namespace
}  // namespace monarch
