#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/rng.h"

namespace monarch {
namespace {

std::uint32_t CrcOfString(const std::string& text) {
  return Crc32c(text.data(), text.size());
}

// Known-answer vectors from the CRC32C (Castagnoli) specification / RFC
// 3720 appendix.
TEST(Crc32cTest, KnownVectors) {
  EXPECT_EQ(0u, Crc32c(nullptr, 0));
  EXPECT_EQ(0xE3069283u, CrcOfString("123456789"));

  // 32 bytes of zeros.
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(0x8A9136AAu, Crc32c(zeros));

  // 32 bytes of 0xFF.
  const std::vector<std::byte> ones(32, std::byte{0xFF});
  EXPECT_EQ(0x62A8AB43u, Crc32c(ones));

  // 0x00..0x1F ascending.
  std::vector<std::byte> ascending(32);
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<std::byte>(i);
  EXPECT_EQ(0x46DD794Eu, Crc32c(ascending));
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  Xoshiro256 rng(11);
  std::vector<std::byte> data(1000);
  for (auto& b : data) b = static_cast<std::byte>(rng() & 0xFF);

  const std::uint32_t whole = Crc32c(data);
  for (const std::size_t split : {1u, 7u, 8u, 63u, 500u, 999u}) {
    // Extend a prefix CRC with the suffix: this is the documented chunked
    // mode (pass the previous return as `crc`).
    const std::uint32_t prefix = Crc32c(data.data(), split);
    const std::uint32_t chained =
        Crc32c(data.data() + split, data.size() - split, prefix);
    EXPECT_EQ(whole, chained) << "split=" << split;
  }
}

TEST(Crc32cTest, SensitiveToSingleBitFlips) {
  std::string text = "monarch hierarchical storage";
  const std::uint32_t original = CrcOfString(text);
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string corrupted = text;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x01);
    EXPECT_NE(original, CrcOfString(corrupted)) << "byte " << i;
  }
}

TEST(Crc32cTest, UnalignedOffsetsAgree) {
  // The slice-by-8 loop must not depend on data alignment.
  std::vector<std::byte> padded(64 + 16);
  Xoshiro256 rng(5);
  for (auto& b : padded) b = static_cast<std::byte>(rng() & 0xFF);
  const std::uint32_t reference = Crc32c(padded.data() + 0, 64);
  for (int offset = 1; offset < 8; ++offset) {
    std::memmove(padded.data() + offset, padded.data(), 64);
    EXPECT_EQ(reference, Crc32c(padded.data() + offset, 64))
        << "offset " << offset;
    std::memmove(padded.data(), padded.data() + offset, 64);
  }
}

TEST(CrcMaskTest, MaskUnmaskRoundTrips) {
  for (const std::uint32_t crc :
       {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu, 0xE3069283u}) {
    EXPECT_EQ(crc, UnmaskCrc(MaskCrc(crc)));
  }
}

TEST(CrcMaskTest, MaskChangesValue) {
  // The mask exists so a CRC stored next to its data cannot be mistaken
  // for a CRC of that data.
  EXPECT_NE(0xE3069283u, MaskCrc(0xE3069283u));
}

}  // namespace
}  // namespace monarch
