#include "util/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include <thread>
#include <vector>

namespace monarch {
namespace {

TEST(LatencyHistogramTest, EmptySnapshotIsZero) {
  LatencyHistogram hist;
  const auto snap = hist.TakeSnapshot();
  EXPECT_EQ(0u, snap.count);
  EXPECT_EQ(0.0, snap.mean_us);
}

TEST(LatencyHistogramTest, SingleSample) {
  LatencyHistogram hist;
  hist.RecordMicros(100);
  const auto snap = hist.TakeSnapshot();
  EXPECT_EQ(1u, snap.count);
  EXPECT_DOUBLE_EQ(100.0, snap.mean_us);
  EXPECT_EQ(100u, snap.min_us);
  EXPECT_EQ(100u, snap.max_us);
}

TEST(LatencyHistogramTest, MeanMinMaxExact) {
  LatencyHistogram hist;
  for (const std::uint64_t us : {10u, 20u, 30u, 40u}) hist.RecordMicros(us);
  const auto snap = hist.TakeSnapshot();
  EXPECT_EQ(4u, snap.count);
  EXPECT_DOUBLE_EQ(25.0, snap.mean_us);
  EXPECT_EQ(10u, snap.min_us);
  EXPECT_EQ(40u, snap.max_us);
}

TEST(LatencyHistogramTest, PercentilesAreBucketApproximate) {
  LatencyHistogram hist;
  // 90 fast ops at 10us, 10 slow at 10000us.
  for (int i = 0; i < 90; ++i) hist.RecordMicros(10);
  for (int i = 0; i < 10; ++i) hist.RecordMicros(10000);
  const auto snap = hist.TakeSnapshot();
  // p50 must land near 10us (log buckets give <= 2x slack), p99 near 10ms.
  EXPECT_LE(snap.p50_us, 20u);
  EXPECT_GE(snap.p99_us, 5000u);
}

TEST(LatencyHistogramTest, RecordDurationConverts) {
  LatencyHistogram hist;
  hist.Record(Millis(2));
  const auto snap = hist.TakeSnapshot();
  EXPECT_EQ(2000u, snap.min_us);
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram hist;
  hist.RecordMicros(5);
  hist.Reset();
  const auto snap = hist.TakeSnapshot();
  EXPECT_EQ(0u, snap.count);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.RecordMicros(static_cast<std::uint64_t>(i % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(static_cast<std::uint64_t>(kThreads * kPerThread),
            hist.TakeSnapshot().count);
}

TEST(LatencyHistogramTest, SnapshotToStringMentionsPercentiles) {
  LatencyHistogram hist;
  hist.RecordMicros(42);
  const std::string text = hist.TakeSnapshot().ToString();
  EXPECT_NE(std::string::npos, text.find("p50"));
  EXPECT_NE(std::string::npos, text.find("p99"));
}

TEST(RunningSummaryTest, WelfordMatchesClosedForm) {
  RunningSummary summary;
  const std::vector<double> samples{2, 4, 4, 4, 5, 5, 7, 9};
  for (double s : samples) summary.Add(s);
  EXPECT_EQ(8u, summary.count());
  EXPECT_DOUBLE_EQ(5.0, summary.mean());
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(32.0 / 7.0, summary.variance(), 1e-12);
  EXPECT_NEAR(std::sqrt(32.0 / 7.0), summary.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(2.0, summary.min());
  EXPECT_DOUBLE_EQ(9.0, summary.max());
}

TEST(RunningSummaryTest, SingleSampleHasZeroVariance) {
  RunningSummary summary;
  summary.Add(3.5);
  EXPECT_DOUBLE_EQ(3.5, summary.mean());
  EXPECT_DOUBLE_EQ(0.0, summary.variance());
}

}  // namespace
}  // namespace monarch
