#include "net/peer_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "../test_support.h"
#include "net/network_model.h"
#include "storage/memory_engine.h"

namespace monarch::net {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

TEST(NetworkModelTest, PredictTransferScalesWithBytes) {
  NetworkProfile profile;
  profile.bandwidth_bps = 1e9;
  profile.hop_latency = Micros(100);
  NetworkModel model(profile);
  const auto small = model.PredictTransfer(4096);
  const auto large = model.PredictTransfer(1 << 20);
  EXPECT_GE(small.count(), Micros(100).count());  // at least one hop
  EXPECT_GT(large.count(), small.count());
}

TEST(NetworkModelTest, ChargeTransferCounts) {
  NetworkProfile profile = NetworkProfile::ClusterInterconnect();
  profile.hop_latency = Micros(0);  // keep the test fast
  NetworkModel model(profile);
  model.ChargeTransfer(1024);
  model.ChargeTransfer(2048);
  model.ChargeRpc();
  EXPECT_EQ(2u, model.transfers());
  EXPECT_EQ(3072u, model.bytes_transferred());
}

/// Resolver over a fixed list of (node, engine) holders, served in order,
/// honouring the exclusion list; kNotFound when none remain.
class FixedResolver final : public PeerEngine::Resolver {
 public:
  explicit FixedResolver(storage::StorageEnginePtr holder) {
    if (holder != nullptr) holders_.push_back({1, std::move(holder)});
  }

  Result<Holder> ResolveHolder(const std::string& path,
                               std::span<const int> exclude) override {
    ++resolutions_;
    for (const Holder& h : holders_) {
      bool skipped = false;
      for (const int node : exclude) {
        if (node == h.node) {
          skipped = true;
          break;
        }
      }
      if (!skipped) return h;
    }
    return NotFoundError("no peer holds '" + path + "'");
  }

  void OnTransferStart(int /*node*/) override { ++starts_; }
  void OnTransferDone(int /*node*/, bool ok) override {
    ++dones_;
    if (!ok) ++failures_;
  }

  void AddHolder(int node, storage::StorageEnginePtr engine) {
    holders_.push_back({node, std::move(engine)});
  }
  void Drop() { holders_.clear(); }
  [[nodiscard]] int resolutions() const noexcept { return resolutions_; }
  [[nodiscard]] int starts() const noexcept { return starts_; }
  [[nodiscard]] int dones() const noexcept { return dones_; }
  [[nodiscard]] int failures() const noexcept { return failures_; }

 private:
  std::vector<Holder> holders_;
  int resolutions_ = 0;
  int starts_ = 0;
  int dones_ = 0;
  int failures_ = 0;
};

struct PeerWorld {
  std::shared_ptr<storage::MemoryEngine> holder =
      std::make_shared<storage::MemoryEngine>("remote-ssd");
  std::shared_ptr<FixedResolver> resolver =
      std::make_shared<FixedResolver>(holder);
  NetworkModelPtr network;
  std::unique_ptr<PeerEngine> peer;

  PeerWorld() {
    NetworkProfile profile = NetworkProfile::ClusterInterconnect();
    profile.hop_latency = Micros(0);
    profile.rpc_timeout = Micros(1);  // keep failover tests fast
    network = std::make_shared<NetworkModel>(profile);
    peer = std::make_unique<PeerEngine>("peer0", resolver, network);
  }
};

TEST(PeerEngineTest, ReadServesRemoteCopyAndChargesFabric) {
  PeerWorld world;
  ASSERT_OK(world.holder->Write("data/a.bin", Bytes("remote payload")));

  std::vector<std::byte> buffer(14);
  auto read = world.peer->Read("data/a.bin", 0, buffer);
  ASSERT_OK(read);
  EXPECT_EQ(14u, read.value());
  EXPECT_EQ("remote payload", Text(buffer));
  // The transfer crossed the simulated fabric and the remote device.
  EXPECT_EQ(1u, world.network->transfers());
  EXPECT_EQ(14u, world.network->bytes_transferred());
  EXPECT_EQ(1u, world.holder->Stats().Snapshot().read_ops);
  EXPECT_EQ(1u, world.peer->Stats().Snapshot().read_ops);
}

TEST(PeerEngineTest, ResolverMissIsNotFound) {
  PeerWorld world;
  world.resolver->Drop();
  std::vector<std::byte> buffer(8);
  EXPECT_STATUS_CODE(StatusCode::kNotFound,
                     world.peer->Read("data/a.bin", 0, buffer));
  // A miss never touches the fabric's data path.
  EXPECT_EQ(0u, world.network->transfers());
}

TEST(PeerEngineTest, MissingFileOnHolderPropagates) {
  PeerWorld world;
  std::vector<std::byte> buffer(8);
  EXPECT_STATUS_CODE(StatusCode::kNotFound,
                     world.peer->Read("data/ghost.bin", 0, buffer));
}

TEST(PeerEngineTest, WritesAreRejectedReadOnly) {
  PeerWorld world;
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     world.peer->Write("data/a.bin", Bytes("x")));
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     world.peer->WriteAt("data/a.bin", 0, Bytes("x")));
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     world.peer->Delete("data/a.bin"));
}

TEST(PeerEngineTest, FailoverRescuesReadFromSecondHolder) {
  PeerWorld world;
  ASSERT_OK(world.holder->Write("data/a.bin", Bytes("replica payload")));
  auto backup = std::make_shared<storage::MemoryEngine>("remote-ssd-2");
  ASSERT_OK(backup->Write("data/a.bin", Bytes("replica payload")));
  world.resolver->AddHolder(2, backup);

  // Kill the primary holder on the fabric: the first attempt times out,
  // and the read is rescued by the second replica.
  world.network->SetNodeDown(1, true);
  std::vector<std::byte> buffer(15);
  auto read = world.peer->Read("data/a.bin", 0, buffer);
  ASSERT_OK(read);
  EXPECT_EQ("replica payload", Text(buffer));
  EXPECT_EQ(1u, world.network->rpc_timeouts());
  EXPECT_EQ(1, world.resolver->failures());
  EXPECT_EQ(2, world.resolver->starts());
  EXPECT_EQ(2, world.resolver->dones());
  // Only the serving replica's device did a read.
  EXPECT_EQ(0u, world.holder->Stats().Snapshot().read_ops);
  EXPECT_EQ(1u, backup->Stats().Snapshot().read_ops);
}

TEST(PeerEngineTest, AllHoldersDownSurfacesUnavailable) {
  PeerWorld world;
  ASSERT_OK(world.holder->Write("data/a.bin", Bytes("replica payload")));
  world.network->SetNodeDown(1, true);
  std::vector<std::byte> buffer(15);
  EXPECT_STATUS_CODE(StatusCode::kUnavailable,
                     world.peer->Read("data/a.bin", 0, buffer));
  EXPECT_EQ(1u, world.network->rpc_timeouts());
}

TEST(PeerEngineTest, PartitionSplitsHolderFromReader) {
  NetworkProfile profile = NetworkProfile::ClusterInterconnect();
  profile.hop_latency = Micros(0);
  profile.rpc_timeout = Micros(1);
  auto network = std::make_shared<NetworkModel>(profile);
  auto holder = std::make_shared<storage::MemoryEngine>("remote-ssd");
  ASSERT_OK(holder->Write("data/a.bin", Bytes("island")));
  auto resolver = std::make_shared<FixedResolver>(holder);
  PeerEngine::Options options;
  options.self_node = 0;
  PeerEngine peer("peer0", resolver, network, options);

  // Nodes {0} vs {1}: reader and holder land on opposite sides.
  network->SetPartition(1ull << 0);
  std::vector<std::byte> buffer(6);
  EXPECT_STATUS_CODE(StatusCode::kUnavailable,
                     peer.Read("data/a.bin", 0, buffer));

  // Healing the partition restores the read path.
  network->SetPartition(0);
  ASSERT_OK(peer.Read("data/a.bin", 0, buffer));
  EXPECT_EQ("island", Text(buffer));
}

TEST(PeerEngineTest, MetadataOpsResolveThroughDirectory) {
  PeerWorld world;
  ASSERT_OK(world.holder->Write("data/a.bin", Bytes("0123456789")));
  auto size = world.peer->FileSize("data/a.bin");
  ASSERT_OK(size);
  EXPECT_EQ(10u, size.value());
  auto exists = world.peer->Exists("data/a.bin");
  ASSERT_OK(exists);
  EXPECT_TRUE(exists.value());
  EXPECT_GE(world.resolver->resolutions(), 2);
}

}  // namespace
}  // namespace monarch::net
