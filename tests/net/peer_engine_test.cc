#include "net/peer_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../test_support.h"
#include "net/network_model.h"
#include "storage/memory_engine.h"

namespace monarch::net {
namespace {

using monarch::testing::Bytes;
using monarch::testing::Text;

TEST(NetworkModelTest, PredictTransferScalesWithBytes) {
  NetworkProfile profile;
  profile.bandwidth_bps = 1e9;
  profile.hop_latency = Micros(100);
  NetworkModel model(profile);
  const auto small = model.PredictTransfer(4096);
  const auto large = model.PredictTransfer(1 << 20);
  EXPECT_GE(small.count(), Micros(100).count());  // at least one hop
  EXPECT_GT(large.count(), small.count());
}

TEST(NetworkModelTest, ChargeTransferCounts) {
  NetworkProfile profile = NetworkProfile::ClusterInterconnect();
  profile.hop_latency = Micros(0);  // keep the test fast
  NetworkModel model(profile);
  model.ChargeTransfer(1024);
  model.ChargeTransfer(2048);
  model.ChargeRpc();
  EXPECT_EQ(2u, model.transfers());
  EXPECT_EQ(3072u, model.bytes_transferred());
}

/// Resolver over a fixed holder engine; kNotFound when disabled.
class FixedResolver final : public PeerEngine::Resolver {
 public:
  explicit FixedResolver(storage::StorageEnginePtr holder)
      : holder_(std::move(holder)) {}

  Result<storage::StorageEnginePtr> ResolveHolder(
      const std::string& path) override {
    ++resolutions_;
    if (holder_ == nullptr) {
      return NotFoundError("no peer holds '" + path + "'");
    }
    return holder_;
  }

  void Drop() { holder_ = nullptr; }
  [[nodiscard]] int resolutions() const noexcept { return resolutions_; }

 private:
  storage::StorageEnginePtr holder_;
  int resolutions_ = 0;
};

struct PeerWorld {
  std::shared_ptr<storage::MemoryEngine> holder =
      std::make_shared<storage::MemoryEngine>("remote-ssd");
  std::shared_ptr<FixedResolver> resolver =
      std::make_shared<FixedResolver>(holder);
  NetworkModelPtr network;
  std::unique_ptr<PeerEngine> peer;

  PeerWorld() {
    NetworkProfile profile = NetworkProfile::ClusterInterconnect();
    profile.hop_latency = Micros(0);
    network = std::make_shared<NetworkModel>(profile);
    peer = std::make_unique<PeerEngine>("peer0", resolver, network);
  }
};

TEST(PeerEngineTest, ReadServesRemoteCopyAndChargesFabric) {
  PeerWorld world;
  ASSERT_OK(world.holder->Write("data/a.bin", Bytes("remote payload")));

  std::vector<std::byte> buffer(14);
  auto read = world.peer->Read("data/a.bin", 0, buffer);
  ASSERT_OK(read);
  EXPECT_EQ(14u, read.value());
  EXPECT_EQ("remote payload", Text(buffer));
  // The transfer crossed the simulated fabric and the remote device.
  EXPECT_EQ(1u, world.network->transfers());
  EXPECT_EQ(14u, world.network->bytes_transferred());
  EXPECT_EQ(1u, world.holder->Stats().Snapshot().read_ops);
  EXPECT_EQ(1u, world.peer->Stats().Snapshot().read_ops);
}

TEST(PeerEngineTest, ResolverMissIsNotFound) {
  PeerWorld world;
  world.resolver->Drop();
  std::vector<std::byte> buffer(8);
  EXPECT_STATUS_CODE(StatusCode::kNotFound,
                     world.peer->Read("data/a.bin", 0, buffer));
  // A miss never touches the fabric's data path.
  EXPECT_EQ(0u, world.network->transfers());
}

TEST(PeerEngineTest, MissingFileOnHolderPropagates) {
  PeerWorld world;
  std::vector<std::byte> buffer(8);
  EXPECT_STATUS_CODE(StatusCode::kNotFound,
                     world.peer->Read("data/ghost.bin", 0, buffer));
}

TEST(PeerEngineTest, WritesAreRejectedReadOnly) {
  PeerWorld world;
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     world.peer->Write("data/a.bin", Bytes("x")));
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     world.peer->WriteAt("data/a.bin", 0, Bytes("x")));
  EXPECT_STATUS_CODE(StatusCode::kFailedPrecondition,
                     world.peer->Delete("data/a.bin"));
}

TEST(PeerEngineTest, MetadataOpsResolveThroughDirectory) {
  PeerWorld world;
  ASSERT_OK(world.holder->Write("data/a.bin", Bytes("0123456789")));
  auto size = world.peer->FileSize("data/a.bin");
  ASSERT_OK(size);
  EXPECT_EQ(10u, size.value());
  auto exists = world.peer->Exists("data/a.bin");
  ASSERT_OK(exists);
  EXPECT_TRUE(exists.value());
  EXPECT_GE(world.resolver->resolutions(), 2);
}

}  // namespace
}  // namespace monarch::net
