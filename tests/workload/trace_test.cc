#include "workload/trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "../test_support.h"
#include "storage/memory_engine.h"

namespace monarch::workload {
namespace {

using monarch::testing::Bytes;

TEST(TraceRecorderTest, RecordsEventsInTimestampOrder) {
  TraceRecorder recorder;
  recorder.Record(TraceOp::kRead, "a", 0, 100);
  recorder.Record(TraceOp::kStat, "b", 0, 0);
  recorder.Record(TraceOp::kWrite, "c", 0, 50);
  EXPECT_EQ(3u, recorder.Size());

  auto events = recorder.Drain();
  ASSERT_EQ(3u, events.size());
  EXPECT_EQ("a", events[0].path);
  EXPECT_EQ(TraceOp::kRead, events[0].op);
  EXPECT_LE(events[0].timestamp, events[1].timestamp);
  EXPECT_LE(events[1].timestamp, events[2].timestamp);
  EXPECT_EQ(0u, recorder.Size()) << "drain must reset";
}

TEST(TraceRecorderTest, ConcurrentRecordingLosesNothing) {
  TraceRecorder recorder;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < 1000; ++i) {
        recorder.Record(TraceOp::kRead, "p" + std::to_string(t),
                        static_cast<std::uint64_t>(i), 10);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(4000u, recorder.Drain().size());
}

TEST(TraceSerializationTest, RoundTrips) {
  TraceRecorder recorder;
  recorder.Record(TraceOp::kRead, "dataset/file-1.tfrecord", 4096, 65536);
  recorder.Record(TraceOp::kWrite, "cache/file-1.tfrecord", 0, 900000);
  recorder.Record(TraceOp::kStat, "dataset/file-2.tfrecord", 0, 0);
  const auto events = recorder.Drain();

  const std::string text = SerializeTrace(events);
  auto parsed = ParseTrace(text);
  ASSERT_OK(parsed);
  ASSERT_EQ(events.size(), parsed.value().size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].op, parsed.value()[i].op);
    EXPECT_EQ(events[i].path, parsed.value()[i].path);
    EXPECT_EQ(events[i].offset, parsed.value()[i].offset);
    EXPECT_EQ(events[i].length, parsed.value()[i].length);
  }
}

TEST(TraceSerializationTest, ParseRejectsMalformedLines) {
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument, ParseTrace("not,enough"));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     ParseTrace("abc,R,path,0,0"));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     ParseTrace("1,Z,path,0,0"));
}

TEST(TraceSerializationTest, EmptyTraceIsEmpty) {
  auto parsed = ParseTrace("");
  ASSERT_OK(parsed);
  EXPECT_TRUE(parsed.value().empty());
  EXPECT_EQ("", SerializeTrace({}));
}

TEST(TracingEngineTest, CapturesReadsWritesStats) {
  auto inner = std::make_shared<storage::MemoryEngine>();
  TraceRecorder recorder;
  TracingEngine traced(inner, recorder);

  ASSERT_OK(traced.Write("f", Bytes("0123456789")));
  std::vector<std::byte> buf(4);
  ASSERT_OK(traced.Read("f", 2, buf));
  ASSERT_OK(traced.FileSize("f"));

  auto events = recorder.Drain();
  ASSERT_EQ(3u, events.size());
  EXPECT_EQ(TraceOp::kWrite, events[0].op);
  EXPECT_EQ(TraceOp::kRead, events[1].op);
  EXPECT_EQ(2u, events[1].offset);
  EXPECT_EQ(4u, events[1].length);
  EXPECT_EQ(TraceOp::kStat, events[2].op);
}

TEST(ReplayTraceTest, ReplaysReadsOnly) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  ASSERT_OK(engine->Write("a", Bytes("aaaaaaaaaa")));
  ASSERT_OK(engine->Write("b", Bytes("bbbbb")));

  std::vector<TraceEvent> events{
      {Micros(0), TraceOp::kRead, "a", 0, 10},
      {Micros(1), TraceOp::kWrite, "ignored", 0, 99},
      {Micros(2), TraceOp::kRead, "b", 0, 5},
      {Micros(3), TraceOp::kStat, "ignored", 0, 0},
      {Micros(4), TraceOp::kRead, "a", 5, 5},
  };
  auto stats = ReplayTrace(events, *engine, /*parallelism=*/2);
  ASSERT_OK(stats);
  EXPECT_EQ(3u, stats.value().ops);
  EXPECT_EQ(20u, stats.value().bytes);
  EXPECT_GE(stats.value().elapsed_seconds, 0.0);
}

TEST(ReplayTraceTest, FailsOnMissingFile) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  std::vector<TraceEvent> events{
      {Micros(0), TraceOp::kRead, "nope", 0, 10},
  };
  EXPECT_STATUS_CODE(StatusCode::kInternal, ReplayTrace(events, *engine));
}

}  // namespace
}  // namespace monarch::workload
