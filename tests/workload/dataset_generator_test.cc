#include "workload/dataset_generator.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "../test_support.h"
#include "storage/memory_engine.h"
#include "tfrecord/index.h"
#include "tfrecord/reader.h"

namespace monarch::workload {
namespace {

TEST(DatasetSpecTest, PresetsMatchPaperScaling) {
  const auto small = DatasetSpec::ImageNet100GiB();
  const auto large = DatasetSpec::ImageNet200GiB();
  // The 200 GiB dataset must be ~2x the 100 GiB one, and the 100 GiB one
  // must fit under the 115 MiB scaled local quota while the 200 GiB one
  // must not.
  EXPECT_NEAR(2.0,
              static_cast<double>(large.approx_total_bytes()) /
                  static_cast<double>(small.approx_total_bytes()),
              0.1);
  EXPECT_LT(small.approx_total_bytes(), 115ULL * 1024 * 1024);
  EXPECT_GT(large.approx_total_bytes(), 115ULL * 1024 * 1024);
}

TEST(DatasetSpecTest, ScaleShrinksFileCount) {
  const auto full = DatasetSpec::ImageNet100GiB(1.0);
  const auto tenth = DatasetSpec::ImageNet100GiB(0.1);
  EXPECT_NEAR(0.1,
              static_cast<double>(tenth.num_files) /
                  static_cast<double>(full.num_files),
              0.05);
}

TEST(RecordFilePathTest, ShardNamingIsStable) {
  const auto spec = DatasetSpec::Tiny();
  EXPECT_EQ("tiny/train-00003-of-00008.tfrecord", RecordFilePath(spec, 3));
}

TEST(SamplePayloadTest, DeterministicPerIdentity) {
  const auto spec = DatasetSpec::Tiny();
  EXPECT_EQ(SamplePayload(spec, 1, 2), SamplePayload(spec, 1, 2));
  EXPECT_NE(SamplePayload(spec, 1, 2), SamplePayload(spec, 1, 3));
  EXPECT_NE(SamplePayload(spec, 1, 2), SamplePayload(spec, 2, 2));
}

TEST(SamplePayloadTest, CarriesIdentityHeader) {
  const auto spec = DatasetSpec::Tiny();
  const auto payload = SamplePayload(spec, 5, 3);
  ASSERT_GE(payload.size(), 20u);
  EXPECT_EQ(std::byte{'M'}, payload[0]);
  EXPECT_EQ(std::byte{'N'}, payload[1]);
  EXPECT_EQ(std::byte{'R'}, payload[2]);
  EXPECT_EQ(std::byte{'C'}, payload[3]);
  EXPECT_EQ(std::byte{5}, payload[4]);   // file index LSB
  EXPECT_EQ(std::byte{3}, payload[12]);  // sample index LSB
}

TEST(SamplePayloadTest, SizeJitterStaysInBand) {
  auto spec = DatasetSpec::Tiny();
  spec.mean_sample_bytes = 10000;
  spec.sample_size_jitter = 0.25;
  for (std::uint64_t s = 0; s < 200; ++s) {
    const auto payload = SamplePayload(spec, 0, s);
    EXPECT_GE(payload.size(), 7500u);
    EXPECT_LE(payload.size(), 12500u);
  }
}

class GenerateDatasetTest : public ::testing::Test {
 protected:
  GenerateDatasetTest()
      : engine_(std::make_shared<storage::MemoryEngine>()) {}

  std::shared_ptr<storage::MemoryEngine> engine_;
};

TEST_F(GenerateDatasetTest, ProducesManifestMatchingSpec) {
  const auto spec = DatasetSpec::Tiny();
  auto manifest = GenerateDataset(*engine_, spec);
  ASSERT_OK(manifest);
  EXPECT_EQ(spec.num_files, manifest.value().num_files());
  EXPECT_EQ(spec.num_files, manifest.value().file_sizes.size());
  EXPECT_GT(manifest.value().total_bytes, 0u);

  // Files really exist with the recorded sizes.
  for (std::size_t i = 0; i < manifest.value().num_files(); ++i) {
    auto size = engine_->FileSize(manifest.value().file_paths[i]);
    ASSERT_OK(size);
    EXPECT_EQ(manifest.value().file_sizes[i], size.value());
  }
}

TEST_F(GenerateDatasetTest, FilesAreValidTFRecords) {
  const auto spec = DatasetSpec::Tiny();
  auto manifest = GenerateDataset(*engine_, spec);
  ASSERT_OK(manifest);

  std::uint64_t total_samples = 0;
  for (const auto& path : manifest.value().file_paths) {
    tfrecord::EngineSource source(engine_, path);
    auto index = tfrecord::BuildIndex(source);
    SCOPED_TRACE(path);
    ASSERT_OK(index);
    total_samples += index.value().size();

    tfrecord::TFRecordReader reader(source);
    while (true) {
      auto record = reader.ReadRecord();
      if (!record.ok()) {
        EXPECT_EQ(StatusCode::kOutOfRange, record.status().code());
        break;
      }
    }
  }
  EXPECT_EQ(spec.total_samples(), total_samples);
}

TEST_F(GenerateDatasetTest, RecordsMatchSamplePayloadOracle) {
  const auto spec = DatasetSpec::Tiny();
  ASSERT_OK(GenerateDataset(*engine_, spec));

  tfrecord::EngineSource source(engine_, RecordFilePath(spec, 2));
  tfrecord::TFRecordReader reader(source);
  for (std::uint64_t s = 0; s < spec.samples_per_file; ++s) {
    auto record = reader.ReadRecord();
    ASSERT_OK(record);
    EXPECT_EQ(SamplePayload(spec, 2, s), record.value()) << "sample " << s;
  }
}

TEST_F(GenerateDatasetTest, DeterministicAcrossRuns) {
  const auto spec = DatasetSpec::Tiny();
  auto engine2 = std::make_shared<storage::MemoryEngine>();
  ASSERT_OK(GenerateDataset(*engine_, spec));
  ASSERT_OK(GenerateDataset(*engine2, spec));

  const std::string path = RecordFilePath(spec, 0);
  std::vector<std::byte> a(engine_->FileSize(path).value());
  std::vector<std::byte> b(engine2->FileSize(path).value());
  ASSERT_OK(engine_->Read(path, 0, a));
  ASSERT_OK(engine2->Read(path, 0, b));
  EXPECT_EQ(a, b);
}

TEST_F(GenerateDatasetTest, RejectsDegenerateSpecs) {
  auto spec = DatasetSpec::Tiny();
  spec.num_files = 0;
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     GenerateDataset(*engine_, spec));
}

TEST_F(GenerateDatasetTest, LoadManifestMatchesGenerated) {
  const auto spec = DatasetSpec::Tiny();
  auto generated = GenerateDataset(*engine_, spec);
  ASSERT_OK(generated);
  auto loaded = LoadManifest(*engine_, spec);
  ASSERT_OK(loaded);
  EXPECT_EQ(generated.value().file_paths, loaded.value().file_paths);
  EXPECT_EQ(generated.value().total_bytes, loaded.value().total_bytes);
}

TEST_F(GenerateDatasetTest, LoadManifestOnEmptyDirFails) {
  EXPECT_STATUS_CODE(StatusCode::kNotFound,
                     LoadManifest(*engine_, DatasetSpec::Tiny()));
}

}  // namespace
}  // namespace monarch::workload
