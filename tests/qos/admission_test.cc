#include "qos/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "qos/tenant.h"
#include "util/clock.h"

namespace monarch::qos {
namespace {

TenantContext Job(int id) {
  TenantContext tenant;
  tenant.tenant_id = id;
  tenant.name = "job" + std::to_string(id);
  return tenant;
}

AdmissionController::Options Capacity(std::uint64_t bytes) {
  AdmissionController::Options options;
  options.capacity_bytes = bytes;
  return options;
}

TEST(AdmissionTest, DisabledControllerAdmitsEverything) {
  AdmissionController controller(Capacity(0));
  EXPECT_FALSE(controller.enabled());
  EXPECT_EQ(AdmissionDecision::kAdmit, controller.Request(Job(1), 1u << 40));
}

TEST(AdmissionTest, AdmitsWithinQueueThreshold) {
  AdmissionController controller(Capacity(1000));
  EXPECT_EQ(AdmissionDecision::kAdmit, controller.Request(Job(1), 500));
  EXPECT_EQ(AdmissionDecision::kAdmit, controller.Request(Job(2), 300));
  EXPECT_EQ(800u, controller.GetStats().committed_bytes);
}

TEST(AdmissionTest, QueuesWhenCommittedFootprintWouldThrash) {
  AdmissionController controller(Capacity(1000));
  ASSERT_EQ(AdmissionDecision::kAdmit, controller.Request(Job(1), 800));
  // 800 + 200 > 1000 * 0.85 -> queue, and nothing extra is committed.
  EXPECT_EQ(AdmissionDecision::kQueue, controller.Request(Job(2), 200));
  EXPECT_EQ(800u, controller.GetStats().committed_bytes);
}

TEST(AdmissionTest, RejectsFootprintThatCanNeverFit) {
  AdmissionController controller(Capacity(1000));
  // 1501 > 1000 * 1.5: even an empty cluster could not hold it.
  EXPECT_EQ(AdmissionDecision::kReject, controller.Request(Job(1), 1501));
  EXPECT_EQ(AdmissionDecision::kAdmit, controller.Request(Job(2), 600));
}

TEST(AdmissionTest, ReleaseFreesCommittedFootprint) {
  AdmissionController controller(Capacity(1000));
  ASSERT_EQ(AdmissionDecision::kAdmit, controller.Request(Job(1), 800));
  EXPECT_EQ(AdmissionDecision::kQueue, controller.Request(Job(2), 400));
  controller.Release(1);
  EXPECT_EQ(0u, controller.GetStats().committed_bytes);
  EXPECT_EQ(AdmissionDecision::kAdmit, controller.Request(Job(2), 400));
  controller.Release(99);  // unknown tenant: no-op, no underflow
  EXPECT_EQ(400u, controller.GetStats().committed_bytes);
}

TEST(AdmissionTest, AwaitAdmissionUnblocksWhenFootprintReleases) {
  AdmissionController controller(Capacity(1000));
  ASSERT_EQ(AdmissionDecision::kAdmit, controller.Request(Job(1), 800));
  std::atomic<int> state{0};  // 0 = waiting, 1 = admitted, -1 = refused
  std::thread waiter([&] {
    state.store(controller.AwaitAdmission(Job(2), 300) ? 1 : -1);
  });
  PreciseSleep(Millis(30));
  EXPECT_EQ(0, state.load()) << "waiter should be queued";
  controller.Release(1);
  waiter.join();
  EXPECT_EQ(1, state.load());
  EXPECT_EQ(300u, controller.GetStats().committed_bytes);
}

TEST(AdmissionTest, AwaitAdmissionReturnsFalseOnReject) {
  AdmissionController controller(Capacity(1000));
  EXPECT_FALSE(controller.AwaitAdmission(Job(1), 2000));
}

TEST(AdmissionTest, ShutdownReleasesQueuedWaiters) {
  AdmissionController controller(Capacity(1000));
  ASSERT_EQ(AdmissionDecision::kAdmit, controller.Request(Job(1), 800));
  std::atomic<int> state{0};
  std::thread waiter([&] {
    state.store(controller.AwaitAdmission(Job(2), 300) ? 1 : -1);
  });
  PreciseSleep(Millis(30));
  controller.Shutdown();
  waiter.join();
  EXPECT_EQ(-1, state.load());
}

TEST(AdmissionTest, StatsCountEveryDecision) {
  AdmissionController controller(Capacity(1000));
  (void)controller.Request(Job(1), 500);   // admit
  (void)controller.Request(Job(2), 500);   // queue (500+500 > 850)
  (void)controller.Request(Job(3), 5000);  // reject
  const AdmissionController::Stats stats = controller.GetStats();
  EXPECT_EQ(1u, stats.admitted);
  EXPECT_EQ(1u, stats.queued);
  EXPECT_EQ(1u, stats.rejected);
}

TEST(AdmissionTest, DecisionNamesAreStable) {
  EXPECT_STREQ("admit", AdmissionDecisionName(AdmissionDecision::kAdmit));
  EXPECT_STREQ("queue", AdmissionDecisionName(AdmissionDecision::kQueue));
  EXPECT_STREQ("reject", AdmissionDecisionName(AdmissionDecision::kReject));
}

}  // namespace
}  // namespace monarch::qos
