#include "qos/fair_queue.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace monarch::qos {
namespace {

TEST(FairQueueTest, FifoWithinSingleClass) {
  FairQueue<int> queue;
  queue.RegisterClass(0, /*band=*/0, /*weight=*/1.0);
  queue.Push(0, 1.0, 10);
  queue.Push(0, 1.0, 20);
  queue.Push(0, 1.0, 30);
  EXPECT_EQ(10, queue.TryPop().value());
  EXPECT_EQ(20, queue.TryPop().value());
  EXPECT_EQ(30, queue.TryPop().value());
  EXPECT_FALSE(queue.TryPop().has_value());
  EXPECT_TRUE(queue.empty());
}

TEST(FairQueueTest, LowerBandAlwaysServedFirst) {
  FairQueue<int> queue;
  queue.RegisterClass(0, /*band=*/0, /*weight=*/1.0);   // demand
  queue.RegisterClass(1, /*band=*/1, /*weight=*/100.0); // background
  // Background queued first and with a huge weight — band priority must
  // still serve demand before any of it.
  for (int i = 0; i < 5; ++i) queue.Push(1, 1.0, 100 + i);
  queue.Push(0, 1e9, 7);  // even an enormous demand cost wins
  EXPECT_EQ(7, queue.TryPop().value());
  EXPECT_EQ(100, queue.TryPop().value());
}

TEST(FairQueueTest, WeightsApportionServiceWithinBand) {
  FairQueue<int> queue;
  queue.RegisterClass(0, /*band=*/0, /*weight=*/3.0);
  queue.RegisterClass(1, /*band=*/0, /*weight=*/1.0);
  for (int i = 0; i < 40; ++i) {
    queue.Push(0, 1.0, 0);
    queue.Push(1, 1.0, 1);
  }
  // Drain the first 40 items: SFQ should serve class 0 about 3x as
  // often as class 1 (finish tags advance at 1/3 vs 1 per item).
  std::map<int, int> served;
  for (int i = 0; i < 40; ++i) ++served[queue.TryPop().value()];
  EXPECT_GE(served[0], 25) << "heavy class under-served";
  EXPECT_GE(served[1], 5) << "light class starved";
}

TEST(FairQueueTest, LightClassIsNeverStarved) {
  FairQueue<int> queue;
  queue.RegisterClass(0, /*band=*/0, /*weight=*/100.0);
  queue.RegisterClass(1, /*band=*/0, /*weight=*/0.5);
  queue.Push(1, 1.0, 1);  // finish tag = 1/0.5 = 2
  // A continuously backlogged heavy stream advances its finish tags by
  // 1/100 per item, so the light item is overtaken after at most about
  // weight-ratio pops — bounded delay, never indefinite starvation.
  int pops_until_light = 0;
  for (;;) {
    queue.Push(0, 1.0, 0);
    if (queue.TryPop().value() == 1) break;
    ++pops_until_light;
    ASSERT_LT(pops_until_light, 1000) << "light class starved";
  }
  EXPECT_LE(pops_until_light, 250);
}

TEST(FairQueueTest, UnregisteredClassAutoRegistersOnLastBand) {
  FairQueue<int> queue;
  queue.RegisterClass(0, /*band=*/0, /*weight=*/1.0);
  queue.RegisterClass(1, /*band=*/1, /*weight=*/1.0);
  queue.Push(9, 1.0, 99);  // never registered — must not be dropped
  queue.Push(0, 1.0, 1);
  EXPECT_EQ(2u, queue.size());
  EXPECT_EQ(1, queue.TryPop().value()) << "band 0 first";
  EXPECT_EQ(99, queue.TryPop().value());
}

TEST(FairQueueTest, ExtractPullsMatchingItem) {
  FairQueue<int> queue;
  queue.RegisterClass(0, 0, 1.0);
  queue.RegisterClass(1, 1, 1.0);
  queue.Push(1, 1.0, 5);
  queue.Push(1, 1.0, 6);
  auto found = queue.Extract([](int v) { return v == 6; });
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(6, *found);
  EXPECT_EQ(1u, queue.size());
  EXPECT_FALSE(queue.Extract([](int v) { return v == 42; }).has_value());
}

TEST(FairQueueTest, ExtractAllDrainsEveryMatch) {
  FairQueue<int> queue;
  queue.RegisterClass(0, 0, 1.0);
  queue.RegisterClass(1, 1, 1.0);
  queue.Push(0, 1.0, 2);
  queue.Push(1, 1.0, 4);
  queue.Push(1, 1.0, 6);
  queue.Push(0, 1.0, 7);
  std::vector<int> evens = queue.ExtractAll([](int v) { return v % 2 == 0; });
  EXPECT_EQ(3u, evens.size());
  EXPECT_EQ(1u, queue.size());
  EXPECT_EQ(7, queue.TryPop().value());
}

TEST(FairQueueTest, ClassDepthTracksQueuedItems) {
  FairQueue<int> queue;
  queue.RegisterClass(0, 0, 1.0);
  queue.RegisterClass(1, 0, 1.0);
  queue.Push(0, 1.0, 1);
  queue.Push(0, 1.0, 2);
  queue.Push(1, 1.0, 3);
  EXPECT_EQ(2u, queue.class_depth(0));
  EXPECT_EQ(1u, queue.class_depth(1));
  EXPECT_EQ(0u, queue.class_depth(7));   // unknown class
  EXPECT_EQ(0u, queue.class_depth(-1));  // out of range
  (void)queue.TryPop();
  EXPECT_EQ(2u, queue.size());
}

TEST(FairQueueTest, ReRegisterKeepsQueuedItems) {
  FairQueue<int> queue;
  queue.RegisterClass(0, /*band=*/1, /*weight=*/1.0);
  queue.RegisterClass(1, /*band=*/0, /*weight=*/1.0);
  queue.Push(0, 1.0, 11);
  queue.Push(1, 1.0, 22);
  // Promote class 0 to band 0 without losing its queued item.
  queue.RegisterClass(0, /*band=*/0, /*weight=*/4.0);
  EXPECT_EQ(2u, queue.size());
  EXPECT_EQ(1u, queue.class_depth(0));
  // Both classes now share band 0; both items must drain.
  EXPECT_TRUE(queue.TryPop().has_value());
  EXPECT_TRUE(queue.TryPop().has_value());
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace monarch::qos
