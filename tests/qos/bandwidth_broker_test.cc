#include "qos/bandwidth_broker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "qos/tenant.h"
#include "util/clock.h"

namespace monarch::qos {
namespace {

TenantContext MakeTenant(int id, double weight,
                         IoClass io_class = IoClass::kTraining) {
  TenantContext tenant;
  tenant.tenant_id = id;
  tenant.name = "t" + std::to_string(id);
  tenant.io_class = io_class;
  tenant.weight = weight;
  return tenant;
}

const BandwidthBroker::TenantUsage* FindUsage(
    const std::vector<BandwidthBroker::TenantUsage>& usage, int id) {
  for (const auto& entry : usage) {
    if (entry.tenant_id == id) return &entry;
  }
  return nullptr;
}

TEST(QosBrokerTest, DisabledBrokerChargesAreFree) {
  BandwidthBroker broker({/*total_rate_bps=*/0.0});
  broker.RegisterTenant(MakeTenant(1, 4.0));
  EXPECT_FALSE(broker.enabled());
  EXPECT_EQ(kZeroDuration, broker.Reserve(1, 1u << 30));
}

TEST(QosBrokerTest, ActiveTenantsSplitTotalByWeight) {
  BandwidthBroker::Options options;
  options.total_rate_bps = 10000.0;
  options.work_conserving = true;
  BandwidthBroker broker(options);
  broker.RegisterTenant(MakeTenant(1, 3.0, IoClass::kInteractive));
  broker.RegisterTenant(MakeTenant(2, 1.0, IoClass::kScan));
  // Both charge -> both active -> 3:1 split of the pipe.
  (void)broker.Reserve(1, 1);
  (void)broker.Reserve(2, 1);
  const auto usage = broker.Usage();
  const auto* heavy = FindUsage(usage, 1);
  const auto* light = FindUsage(usage, 2);
  ASSERT_NE(nullptr, heavy);
  ASSERT_NE(nullptr, light);
  EXPECT_NEAR(7500.0, heavy->share_bps, 1.0);
  EXPECT_NEAR(2500.0, light->share_bps, 1.0);
}

TEST(QosBrokerTest, WorkConservingLendsIdleShareToActiveTenant) {
  BandwidthBroker::Options options;
  options.total_rate_bps = 10000.0;
  options.work_conserving = true;
  BandwidthBroker broker(options);
  broker.RegisterTenant(MakeTenant(1, 1.0));
  broker.RegisterTenant(MakeTenant(2, 1.0));
  // Only tenant 1 charges: it should inherit the whole pipe while
  // tenant 2 keeps its strict half on the books for instant resume.
  (void)broker.Reserve(1, 1);
  const auto usage = broker.Usage();
  EXPECT_NEAR(10000.0, FindUsage(usage, 1)->share_bps, 1.0);
  EXPECT_NEAR(5000.0, FindUsage(usage, 2)->share_bps, 1.0);
}

TEST(QosBrokerTest, StrictModeKeepsIdleReservations) {
  BandwidthBroker::Options options;
  options.total_rate_bps = 10000.0;
  options.work_conserving = false;
  BandwidthBroker broker(options);
  broker.RegisterTenant(MakeTenant(1, 1.0));
  broker.RegisterTenant(MakeTenant(2, 1.0));
  (void)broker.Reserve(1, 1);
  // Non-work-conserving: the active tenant stays pinned at its half
  // even though its peer is idle.
  EXPECT_NEAR(5000.0, FindUsage(broker.Usage(), 1)->share_bps, 1.0);
}

TEST(QosBrokerTest, UsageTracksConsumptionAndThrottling) {
  BandwidthBroker::Options options;
  options.total_rate_bps = 100000.0;  // burst = rate/20 = 5000
  BandwidthBroker broker(options);
  broker.RegisterTenant(MakeTenant(1, 1.0));
  broker.Acquire(1, 2000);
  broker.Acquire(1, 20000);  // far past the burst -> must throttle
  const auto usage_list = broker.Usage();
  const auto* usage = FindUsage(usage_list, 1);
  ASSERT_NE(nullptr, usage);
  EXPECT_EQ(22000u, usage->consumed_bytes);
  EXPECT_GE(usage->throttle_waits, 1u);
  EXPECT_GT(usage->throttled_us, 0u);
}

TEST(QosBrokerTest, UnknownTenantAutoRegistersWithDefaultWeight) {
  BandwidthBroker::Options options;
  options.total_rate_bps = 10000.0;
  options.default_weight = 2.0;
  BandwidthBroker broker(options);
  (void)broker.Reserve(42, 10);  // never registered
  const auto usage_list = broker.Usage();
  const auto* usage = FindUsage(usage_list, 42);
  ASSERT_NE(nullptr, usage) << "charges must not bypass enforcement";
  EXPECT_DOUBLE_EQ(2.0, usage->weight);
  EXPECT_EQ(10u, usage->consumed_bytes);
}

TEST(QosBrokerTest, AcquireCurrentUsesAmbientTenant) {
  BandwidthBroker::Options options;
  options.total_rate_bps = 1e9;  // effectively free, just accounting
  BandwidthBroker broker(options);
  const TenantContext ambient = MakeTenant(7, 1.0);
  const TenantContext fallback = MakeTenant(8, 1.0);
  broker.RegisterTenant(ambient);
  broker.RegisterTenant(fallback);
  {
    ScopedTenant scope(ambient);
    broker.AcquireCurrent(fallback, 100);
  }
  broker.AcquireCurrent(fallback, 50);  // no ambient -> fallback
  const auto usage = broker.Usage();
  EXPECT_EQ(100u, FindUsage(usage, 7)->consumed_bytes);
  EXPECT_EQ(50u, FindUsage(usage, 8)->consumed_bytes);
}

TEST(QosBrokerTest, ConcurrentAcquirersAreHeldToTheTotalRate) {
  BandwidthBroker::Options options;
  options.total_rate_bps = 50000.0;  // burst = 2500
  BandwidthBroker broker(options);
  broker.RegisterTenant(MakeTenant(1, 1.0));
  const Stopwatch timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&broker] {
      for (int i = 0; i < 5; ++i) broker.Acquire(1, 1000);
    });
  }
  for (auto& t : threads) t.join();
  // 20000 bytes minus the 2500 burst at 50000 B/s >= ~0.35 s.
  EXPECT_GT(timer.ElapsedSeconds(), 0.2);
}

}  // namespace
}  // namespace monarch::qos
