// Shared test scaffolding: unique temp directories, status matchers, and
// small factory helpers used across the suite.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "util/status.h"

namespace monarch::testing {

/// Creates (and on destruction removes) a unique directory under the
/// system temp root. One per fixture keeps tests hermetic and parallel-
/// safe under `ctest -j`.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<std::uint64_t> counter{0};
    const auto id = counter.fetch_add(1);
    path_ = std::filesystem::temp_directory_path() /
            ("monarch_test_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(id));
    std::filesystem::create_directories(path_);
  }

  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  [[nodiscard]] std::filesystem::path Sub(const std::string& name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

/// Bytes from a string literal (test payloads).
inline std::vector<std::byte> Bytes(const std::string& text) {
  std::vector<std::byte> out(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    out[i] = static_cast<std::byte>(text[i]);
  }
  return out;
}

inline std::string Text(const std::vector<std::byte>& bytes) {
  std::string out(bytes.size(), '\0');
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out[i] = static_cast<char>(bytes[i]);
  }
  return out;
}

/// Uniform access to the Status of either a Status or a Result<T>.
inline Status GetStatus(const Status& status) { return status; }
template <typename T>
Status GetStatus(const Result<T>& result) {
  return result.status();
}

}  // namespace monarch::testing

// Assertion helpers for Status / Result.
#define ASSERT_OK(expr)                                               \
  do {                                                                \
    const auto _assert_ok_st = ::monarch::testing::GetStatus((expr)); \
    ASSERT_TRUE(_assert_ok_st.ok()) << _assert_ok_st.ToString();      \
  } while (0)

#define EXPECT_OK(expr)                                               \
  do {                                                                \
    const auto _expect_ok_st = ::monarch::testing::GetStatus((expr)); \
    EXPECT_TRUE(_expect_ok_st.ok()) << _expect_ok_st.ToString();      \
  } while (0)

#define EXPECT_STATUS_CODE(expected_code, expr)                     \
  do {                                                              \
    const auto _st_code = ::monarch::testing::GetStatus((expr));    \
    EXPECT_FALSE(_st_code.ok());                                    \
    EXPECT_EQ((expected_code), _st_code.code()) << _st_code.ToString(); \
  } while (0)
