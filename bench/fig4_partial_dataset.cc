// Figure 4 (§IV-A): vanilla-lustre versus MONARCH on the 200 GiB-scale
// dataset — the one that does NOT fit the local tier (vanilla-caching is
// structurally excluded, exactly as in the paper).
//
// Shape targets from the paper:
//   - LeNet total time drops ~24%, AlexNet ~12%, ResNet-50 flat;
//   - in epochs 2-3 MONARCH still issues PFS reads for the unplaced
//     remainder (~360k of 798,340 ops per epoch at paper scale, i.e.
//     ~45% of steady-state epoch traffic still hits Lustre);
//   - over the whole run MONARCH cuts PFS ops by ~55% on average;
//   - metadata initialisation roughly doubles versus the 100 GiB dataset.
//
// To measure the steady-state split directly, each run trains in two
// phases against the same backends: phase 1 is the placement epoch,
// phase 2 the remaining epochs; PFS counters are diffed per phase.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "dlsim/cluster.h"
#include "dlsim/monarch_opener.h"
#include "dlsim/record_opener.h"
#include "dlsim/setups.h"

namespace monarch::bench {
namespace {

using dlsim::ExperimentConfig;

dlsim::TrainerConfig PhaseConfig(const ExperimentConfig& config,
                                 int epochs) {
  dlsim::TrainerConfig tc;
  tc.model = config.model;
  tc.epochs = epochs;
  tc.batch_size = config.batch_size;
  tc.num_gpus = config.num_gpus;
  tc.loader.reader_threads = config.reader_threads;
  tc.loader.read_chunk_bytes = config.read_chunk_bytes;
  tc.loader.shuffle_seed = config.run_seed;
  return tc;
}

// Peer-caching extension (ISSUE 4): the same 200 GiB-scale dataset that
// overflows ONE node's local tier FITS the aggregate quota of two nodes.
// With cooperative peer caching each node stages its consistent-hash
// half, reads the other half over the interconnect, and steady-state
// epochs stop touching the PFS entirely — versus plain MONARCH, where
// every node re-reads its unplaced ~45% from Lustre each epoch.
//
// Steady-state PFS demand reads are estimated from the Monarch level
// counters: epoch 1 reads each file from the PFS at most once, so
// max(0, pfs_demand_reads - files) / (E-1) bounds the per-epoch
// steady-state traffic (exact for the non-peer arm).
int RunPeerExtension(BenchEnv& env,
                     std::vector<std::pair<std::string, double>>& json) {
  PrintBanner(std::cout,
              "Figure 4 extension: 2 nodes, cooperative peer caching "
              "(LeNet)");
  Table table({"setup", "epoch1_s", "steady_s", "pfs_demand_reads",
               "steady_pfs_reads/epoch", "peer_reads", "peer_GiB"});

  for (const bool peer_sharing : {false, true}) {
    dlsim::ClusterConfig config;
    config.num_jobs = 2;
    config.use_monarch = true;
    config.peer_sharing = peer_sharing;
    config.dataset = workload::DatasetSpec::ImageNet200GiB(env.scale);
    config.model = dlsim::ModelProfile::LeNet();
    config.epochs = env.epochs;
    // One node holds ~57% of the dataset; two nodes hold all of it.
    config.local_quota_bytes = static_cast<std::uint64_t>(
        115.0 * env.scale * static_cast<double>(kMiB));
    // Two distinct owners stage every file (ISSUE 7): peer reads survive
    // a holder loss, at the cost of 2x staged bytes.
    config.peer_replication = 2;
    config.seed = 11;

    auto result = dlsim::RunClusterExperiment(
        env.work_dir / "pfs_peer",
        env.work_dir / (peer_sharing ? "peer_on" : "peer_off"), config);
    if (!result.ok()) {
      std::cerr << "peer extension run failed: " << result.status() << "\n";
      return 1;
    }

    RunningSummary epoch1;
    RunningSummary steady;
    double pfs_demand = 0;
    double peer_reads = 0;
    double files = 0;
    for (const auto& job : result.value().jobs) {
      epoch1.Add(job.training.EpochSeconds(1));
      for (int e = 2; e <= env.epochs; ++e) {
        steady.Add(job.training.EpochSeconds(e));
      }
      const auto& stats = job.monarch_stats;
      pfs_demand += static_cast<double>(stats.pfs_reads());
      files += static_cast<double>(stats.files_indexed);
      const int peer_level = static_cast<int>(stats.levels.size()) - 2;
      if (peer_sharing && peer_level >= 1) {
        peer_reads += static_cast<double>(
            stats.levels[static_cast<std::size_t>(peer_level)].reads);
      }
    }
    const double steady_pfs =
        env.epochs > 1
            ? std::max(0.0, pfs_demand - files) / (env.epochs - 1)
            : 0.0;
    const double gib = static_cast<double>(1ULL << 30);
    const std::string key =
        peer_sharing ? "peer.monarch-peer" : "peer.monarch";
    table.AddRow({peer_sharing ? "monarch-peer" : "monarch",
                  Table::Num(epoch1.mean(), 2), Table::Num(steady.mean(), 2),
                  Table::Num(pfs_demand, 0), Table::Num(steady_pfs, 1),
                  Table::Num(peer_reads, 0),
                  Table::Num(static_cast<double>(result.value().peer_bytes) /
                                 gib,
                             3)});
    json.emplace_back(key + ".steady_pfs_reads_per_epoch", steady_pfs);
    json.emplace_back(key + ".pfs_demand_reads", pfs_demand);
    json.emplace_back(key + ".peer_reads", peer_reads);
    std::cout << "  done: peer extension "
              << (peer_sharing ? "monarch-peer" : "monarch") << "\n";
  }
  table.PrintAscii(std::cout);
  std::cout << "(dataset > one node's quota but <= the 2-node aggregate: "
               "with peer sharing the\nsteady-state PFS column collapses "
               "to ~0 — the unplaced remainder is served by the\npeer "
               "that owns it instead of Lustre)\n";
  return 0;
}

// Policy sweep (placement-policy tentpole): dataset/quota overcommit
// ratios x the pluggable eviction policies, LeNet with look-ahead on.
// Phase 1 is the placement epoch; the steady-state hit rate is the share
// of demand reads in epochs 2+ served by a non-PFS tier, straight from
// the Monarch level counters. Target: at 2x overcommit the clairvoyant
// arm keeps >=80% of steady reads off the PFS by evicting along the
// whole-run schedule, while first-fit (which never evicts) stays
// capacity-bound near the ~1/overcommit placed fraction.
int RunPolicySweep(BenchEnv& env,
                   std::vector<std::pair<std::string, double>>& json) {
  PrintBanner(std::cout,
              "Figure 4 sweep: eviction policy vs dataset/quota overcommit "
              "(LeNet, look-ahead on)");
  const std::vector<std::pair<std::string, double>> ratios{
      {"1.1x", 1.1}, {"2x", 2.0}, {"4x", 4.0}, {"10x", 10.0}};
  const std::vector<std::string> policies{"first-fit", "lru", "hotspot",
                                          "clairvoyant"};
  Table table({"overcommit", "policy", "steady_s", "hit_rate", "evictions",
               "evict_refused"});

  for (const auto& [label, ratio] : ratios) {
    for (const auto& policy : policies) {
      ExperimentConfig config;
      config.dataset = workload::DatasetSpec::ImageNet200GiB(env.scale);
      config.model = dlsim::ModelProfile::LeNet();
      config.epochs = env.epochs;
      config.placement_policy = policy;
      config.run_seed = 4100;

      const auto pfs_root = env.work_dir / "pfs_sweep";
      auto manifest = dlsim::EnsureDataset(pfs_root, config.dataset);
      if (!manifest.ok()) {
        std::cerr << "sweep dataset failed: " << manifest.status() << "\n";
        return 1;
      }
      config.local_quota_bytes = static_cast<std::uint64_t>(
          static_cast<double>(manifest.value().total_bytes) / ratio);
      // Look-ahead and the clairvoyant protect window scale with the
      // workload: a look-ahead deeper than the cache just churns
      // speculative copies against each other, and a protect window
      // spanning the whole (reduced-scale) epoch would mark every placed
      // file "needed soon" and veto all evictions — not what the
      // full-scale default (64 out of ~800k accesses/epoch) means.
      const std::uint64_t files = manifest.value().num_files();
      const std::uint64_t cache_files = std::max<std::uint64_t>(
          1, config.local_quota_bytes /
                 std::max<std::uint64_t>(
                     1, manifest.value().total_bytes / files));
      config.prefetch_lookahead = static_cast<int>(
          std::clamp<std::uint64_t>(std::min(files / 2, cache_files), 4, 64));
      config.policy_knobs.clairvoyant_protect_window =
          std::clamp<std::uint64_t>(files / 16, 2, 8);

      auto setup = dlsim::MakeMonarchSetup(
          pfs_root, env.work_dir / ("sweep_" + policy + "_" + label), config);
      if (!setup.ok()) {
        std::cerr << "sweep setup failed: " << setup.status() << "\n";
        return 1;
      }
      core::Monarch& monarch = *setup.value().monarch;

      // Phase 1 places; phase 2 measures the steady state.
      dlsim::Trainer phase1(setup.value().files,
                            std::make_unique<dlsim::MonarchOpener>(monarch),
                            PhaseConfig(config, 1));
      if (auto result = phase1.Train(); !result.ok()) {
        std::cerr << "sweep phase 1 failed: " << result.status() << "\n";
        return 1;
      }
      monarch.DrainPlacements();
      const auto stats_e1 = monarch.Stats();

      dlsim::Trainer phase2(setup.value().files,
                            std::make_unique<dlsim::MonarchOpener>(monarch),
                            PhaseConfig(config, env.epochs - 1));
      auto result2 = phase2.Train();
      if (!result2.ok()) {
        std::cerr << "sweep phase 2 failed: " << result2.status() << "\n";
        return 1;
      }
      const auto stats = monarch.Stats();

      const double steady_total = static_cast<double>(stats.total_reads()) -
                                  static_cast<double>(stats_e1.total_reads());
      const double steady_pfs = static_cast<double>(stats.pfs_reads()) -
                                static_cast<double>(stats_e1.pfs_reads());
      const double hit_rate =
          steady_total > 0 ? 1.0 - steady_pfs / steady_total : 0.0;
      const double steady_seconds =
          result2.value().total_seconds / (env.epochs - 1);
      const double evictions =
          static_cast<double>(stats.placement.evictions);
      const double refused =
          static_cast<double>(stats.placement.eviction_refused);

      table.AddRow({label, policy, Table::Num(steady_seconds, 2),
                    Table::Num(hit_rate, 3), Table::Num(evictions, 0),
                    Table::Num(refused, 0)});
      const std::string key = "sweep." + policy + "." + label;
      json.emplace_back(key + ".steady_non_pfs_hit_rate", hit_rate);
      json.emplace_back(key + ".evictions", evictions);
      json.emplace_back(key + ".steady_epoch_seconds", steady_seconds);
      std::cout << "  done: sweep " << policy << " @ " << label << "\n";
    }
  }
  table.PrintAscii(std::cout);
  std::cout << "(at 2x overcommit clairvoyant keeps steady-state demand "
               "reads on the local tier\nby evicting along the whole-run "
               "schedule; first-fit never evicts and is pinned\nnear the "
               "placed fraction from epoch 1)\n";
  return 0;
}

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("fig4");
  const char* arms_env = std::getenv("MONARCH_FIG4_ARMS");
  const std::string arms = arms_env != nullptr ? arms_env : "all";
  std::cout << "fig4_partial_dataset: runs=" << env.runs
            << " scale=" << env.scale << " epochs=" << env.epochs << "\n";
  if (env.epochs < 2) {
    std::cerr << "fig4 needs MONARCH_BENCH_EPOCHS >= 2\n";
    return 1;
  }

  // MONARCH_FIG4_ARMS: all (default) | sweep (policy sweep only, for
  // bench_smoke) | paper (figure arms only, skip the sweep).
  if (arms == "sweep") {
    std::vector<CellResult> cells;
    std::vector<std::pair<std::string, double>> json_metrics;
    if (const int rc = RunPolicySweep(env, json_metrics); rc != 0) return rc;
    WriteBenchJson(env, "fig4", cells, json_metrics);
    env.Cleanup();
    return 0;
  }

  const std::vector<dlsim::ModelProfile> models{
      dlsim::ModelProfile::LeNet(), dlsim::ModelProfile::AlexNet(),
      dlsim::ModelProfile::ResNet50()};

  std::vector<CellResult> cells;
  RunningSummary metadata_init_seconds;
  RunningSummary monarch_steady_pfs_reads;   ///< per steady epoch
  RunningSummary monarch_epoch1_pfs_reads;
  RunningSummary vanilla_steady_pfs_reads;
  RunningSummary placed_fraction;

  for (const bool use_monarch : {false, true}) {
    for (const auto& model : models) {
      CellResult cell;
      cell.setup = use_monarch ? "monarch" : "vanilla-lustre";
      cell.model = model.name;
      for (int run = 0; run < env.runs; ++run) {
        ExperimentConfig config;
        config.dataset = workload::DatasetSpec::ImageNet200GiB(env.scale);
        config.model = model;
        config.epochs = env.epochs;
        config.local_quota_bytes = static_cast<std::uint64_t>(
            115.0 * env.scale * static_cast<double>(kMiB));
        config.run_seed = static_cast<std::uint64_t>(4000 + run);

        const auto pfs_root = env.work_dir / ("pfs_r" + std::to_string(run));
        auto setup =
            use_monarch
                ? dlsim::MakeMonarchSetup(
                      pfs_root,
                      env.work_dir / ("local_" + model.name + "_r" +
                                      std::to_string(run)),
                      config)
                : dlsim::MakeVanillaLustreSetup(pfs_root, config);
        if (!setup.ok()) {
          std::cerr << "setup failed: " << setup.status() << "\n";
          return 1;
        }

        // Fresh opener per phase, bound to the same backends/middleware.
        auto make_opener = [&]() -> dlsim::RecordFileOpenerPtr {
          if (use_monarch) {
            return std::make_unique<dlsim::MonarchOpener>(
                *setup.value().monarch);
          }
          return std::make_unique<dlsim::EngineOpener>(
              setup.value().pfs_engine);
        };

        const auto pfs_at_start = setup.value().pfs_engine->Stats().Snapshot();

        // Phase 1: the placement epoch.
        dlsim::Trainer phase1(setup.value().files, make_opener(),
                              PhaseConfig(config, 1));
        auto result1 = phase1.Train();
        if (!result1.ok()) {
          std::cerr << "phase 1 failed: " << result1.status() << "\n";
          return 1;
        }
        if (use_monarch) setup.value().monarch->DrainPlacements();
        const auto pfs_after_e1 =
            setup.value().pfs_engine->Stats().Snapshot();

        // Phase 2: the steady-state epochs.
        dlsim::Trainer phase2(setup.value().files, make_opener(),
                              PhaseConfig(config, env.epochs - 1));
        auto result2 = phase2.Train();
        if (!result2.ok()) {
          std::cerr << "phase 2 failed: " << result2.status() << "\n";
          return 1;
        }
        const auto pfs_at_end = setup.value().pfs_engine->Stats().Snapshot();

        // Stitch the phases into one per-epoch series.
        dlsim::TrainingResult combined = std::move(result1).value();
        for (auto epoch : result2.value().epochs) {
          epoch.epoch += 1;
          combined.epochs.push_back(epoch);
        }
        combined.total_seconds += result2.value().total_seconds;

        const double steady_reads =
            static_cast<double>((pfs_at_end - pfs_after_e1).read_ops) /
            (env.epochs - 1);
        if (use_monarch) {
          monarch_epoch1_pfs_reads.Add(
              static_cast<double>((pfs_after_e1 - pfs_at_start).read_ops));
          monarch_steady_pfs_reads.Add(steady_reads);
          const auto stats = setup.value().monarch->Stats();
          metadata_init_seconds.Add(stats.metadata_init_seconds);
          placed_fraction.Add(
              static_cast<double>(stats.placement.completed) /
              static_cast<double>(stats.files_indexed));
          cell.AccumulateMonarch(stats);
        } else {
          vanilla_steady_pfs_reads.Add(steady_reads);
        }

        const auto local =
            setup.value().local_engine
                ? setup.value().local_engine->Stats().Snapshot()
                : storage::IoStatsSnapshot{};
        cell.Accumulate(combined, pfs_at_end - pfs_at_start, local,
                        env.epochs);
      }
      std::cout << "  done: " << cell.setup << " / " << model.name << "\n";
      cells.push_back(std::move(cell));
    }
  }

  PrintEpochTable(
      "Figure 4: per-epoch training time, 200 GiB-scale dataset "
      "(seconds, mean±sd)",
      cells, env.epochs);

  PrintBanner(std::cout,
              "Figure 4 summary: MONARCH total-time change vs vanilla-lustre");
  Table summary({"model", "monarch vs vanilla"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    summary.AddRow(
        {models[m].name,
         RelativeChange(cells[m].total_seconds.mean(),
                        cells[models.size() + m].total_seconds.mean())});
  }
  summary.PrintAscii(std::cout);

  PrintPfsPressureTable("Figure 4: backend I/O operations per run", cells);

  PrintBanner(std::cout, "Figure 4: PFS read-operation reduction (whole run)");
  Table reduction({"model", "vanilla_pfs_reads", "monarch_pfs_reads",
                   "reduction"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    const double vanilla = cells[m].pfs_read_ops.mean();
    const double monarch = cells[models.size() + m].pfs_read_ops.mean();
    reduction.AddRow({models[m].name, Table::Num(vanilla, 0),
                      Table::Num(monarch, 0),
                      RelativeChange(vanilla, monarch)});
  }
  reduction.PrintAscii(std::cout);
  std::cout << "(paper: ~55% average PFS-op reduction over the full "
               "training workload)\n";

  PrintBanner(std::cout, "Figure 4: steady-state (epoch 2+) PFS traffic");
  std::cout << "vanilla per-epoch PFS reads : "
            << MeanSd(vanilla_steady_pfs_reads, 0) << "\n"
            << "monarch per-epoch PFS reads : "
            << MeanSd(monarch_steady_pfs_reads, 0) << "\n"
            << "monarch epoch-1  PFS reads  : "
            << MeanSd(monarch_epoch1_pfs_reads, 0) << "\n"
            << "fraction of dataset placed  : " << MeanSd(placed_fraction, 3)
            << "\n"
            << "(paper: ~360,000 of 798,340 per-epoch ops still reach "
               "Lustre in epochs 2-3)\n";

  PrintBanner(std::cout, "Figure 4: MONARCH metadata initialisation");
  std::cout << "metadata-init seconds (mean±sd): "
            << MeanSd(metadata_init_seconds, 4)
            << "  (paper: ~52 s at full scale, ~2x the 100 GiB dataset)\n";

  std::vector<std::pair<std::string, double>> json_metrics{
      {"metadata_init_seconds_mean", metadata_init_seconds.mean()},
      {"vanilla_steady_pfs_reads_mean", vanilla_steady_pfs_reads.mean()},
      {"monarch_steady_pfs_reads_mean", monarch_steady_pfs_reads.mean()},
      {"monarch_epoch1_pfs_reads_mean", monarch_epoch1_pfs_reads.mean()},
      {"placed_fraction_mean", placed_fraction.mean()}};

  if (const int rc = RunPeerExtension(env, json_metrics); rc != 0) return rc;
  if (arms != "paper") {
    if (const int rc = RunPolicySweep(env, json_metrics); rc != 0) return rc;
  }

  WriteBenchJson(env, "fig4", cells, json_metrics);
  env.Cleanup();
  return 0;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
