// Figure 1 (motivation, §II): average per-epoch training time for the
// vanilla-lustre / vanilla-local / vanilla-caching setups across LeNet,
// AlexNet and ResNet-50 on the 100 GiB-scale ImageNet dataset.
//
// Shape targets from the paper:
//   - vanilla-local beats vanilla-lustre by ~46% (LeNet) / ~18% (AlexNet)
//     over three epochs; ResNet-50 is flat (compute-bound);
//   - vanilla-caching pays a first-epoch penalty versus vanilla-lustre
//     (inline copy to local), then matches vanilla-local in epochs 2-3;
//   - vanilla-lustre shows the largest run-to-run spread (contention).
//
// Two MONARCH arms ride along for the staging-pipeline comparison:
// demand-only ("monarch") and look-ahead ("monarch-prefetch", lookahead
// 8). BENCH_fig1.json records both so the first-epoch win of prefetching
// is machine-checkable.
#include <functional>
#include <iostream>

#include "bench_common.h"

namespace monarch::bench {
namespace {

using dlsim::ExperimentConfig;
using dlsim::Setup;

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("fig1");
  std::cout << "fig1_motivation: runs=" << env.runs
            << " scale=" << env.scale << " epochs=" << env.epochs << "\n";

  const std::vector<dlsim::ModelProfile> models{
      dlsim::ModelProfile::LeNet(), dlsim::ModelProfile::AlexNet(),
      dlsim::ModelProfile::ResNet50()};

  struct SetupKind {
    std::string name;
    std::function<Result<Setup>(const ExperimentConfig&, int run)> make;
  };
  const std::vector<SetupKind> setups{
      {"vanilla-lustre",
       [&](const ExperimentConfig& config, int run) {
         return dlsim::MakeVanillaLustreSetup(
             env.work_dir / ("pfs_r" + std::to_string(run)), config);
       }},
      {"vanilla-local",
       [&](const ExperimentConfig& config, int run) {
         return dlsim::MakeVanillaLocalSetup(
             env.work_dir / ("pfs_r" + std::to_string(run)),
             env.work_dir / ("local_vl" + std::to_string(run)), config);
       }},
      {"vanilla-caching",
       [&](const ExperimentConfig& config, int run) {
         return dlsim::MakeVanillaCachingSetup(
             env.work_dir / ("pfs_r" + std::to_string(run)),
             env.work_dir / ("local_vc" + std::to_string(run) + "_" +
                             config.model.name),
             config);
       }},
      {"monarch",
       [&](const ExperimentConfig& config, int run) {
         return dlsim::MakeMonarchSetup(
             env.work_dir / ("pfs_r" + std::to_string(run)),
             env.work_dir / ("local_mn" + std::to_string(run) + "_" +
                             config.model.name),
             config);
       }},
      {"monarch-prefetch",
       [&](const ExperimentConfig& config, int run) {
         ExperimentConfig prefetching = config;
         prefetching.prefetch_lookahead = 8;
         return dlsim::MakeMonarchSetup(
             env.work_dir / ("pfs_r" + std::to_string(run)),
             env.work_dir / ("local_mp" + std::to_string(run) + "_" +
                             config.model.name),
             prefetching);
       }},
  };

  std::vector<CellResult> cells;
  for (const SetupKind& kind : setups) {
    for (const auto& model : models) {
      CellResult cell;
      cell.setup = kind.name;
      cell.model = model.name;
      for (int run = 0; run < env.runs; ++run) {
        ExperimentConfig config;
        config.dataset = workload::DatasetSpec::ImageNet100GiB(env.scale);
        config.model = model;
        config.epochs = env.epochs;
        config.local_quota_bytes = static_cast<std::uint64_t>(
            115.0 * env.scale * static_cast<double>(kMiB));
        config.run_seed = static_cast<std::uint64_t>(1000 + run);

        auto setup = kind.make(config, run);
        if (!setup.ok()) {
          std::cerr << "setup failed: " << setup.status() << "\n";
          return 1;
        }
        // Interval measurement around Train(): diff two Snapshots so
        // setup traffic (dataset staging) is excluded. Reset() would be
        // unsafe against in-flight readers — see io_stats.h.
        const auto pfs_before =
            setup.value().pfs_engine
                ? setup.value().pfs_engine->Stats().Snapshot()
                : storage::IoStatsSnapshot{};
        const auto local_before =
            setup.value().local_engine
                ? setup.value().local_engine->Stats().Snapshot()
                : storage::IoStatsSnapshot{};
        auto result = setup.value().trainer->Train();
        if (!result.ok()) {
          std::cerr << "training failed: " << result.status() << "\n";
          return 1;
        }
        if (setup.value().monarch) {
          setup.value().monarch->DrainPlacements();
          cell.AccumulateMonarch(setup.value().monarch->Stats());
        }
        const auto pfs =
            (setup.value().pfs_engine
                 ? setup.value().pfs_engine->Stats().Snapshot()
                 : storage::IoStatsSnapshot{}) -
            pfs_before;
        const auto local =
            (setup.value().local_engine
                 ? setup.value().local_engine->Stats().Snapshot()
                 : storage::IoStatsSnapshot{}) -
            local_before;
        cell.Accumulate(result.value(), pfs, local, env.epochs);
      }
      std::cout << "  done: " << kind.name << " / " << model.name << "\n";
      cells.push_back(std::move(cell));
    }
  }

  PrintEpochTable("Figure 1: per-epoch training time (seconds, mean±sd)",
                  cells, env.epochs);

  // The paper's §II headline deltas, plus the MONARCH riders.
  PrintBanner(std::cout,
              "Figure 1 summary: total-time change vs vanilla-lustre");
  Table summary({"model", "vanilla-local", "vanilla-caching", "monarch",
                 "monarch-prefetch"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    const double lustre = cells[m].total_seconds.mean();
    const double local = cells[models.size() + m].total_seconds.mean();
    const double caching = cells[2 * models.size() + m].total_seconds.mean();
    const double monarch = cells[3 * models.size() + m].total_seconds.mean();
    const double prefetch =
        cells[4 * models.size() + m].total_seconds.mean();
    summary.AddRow({models[m].name, RelativeChange(lustre, local),
                    RelativeChange(lustre, caching),
                    RelativeChange(lustre, monarch),
                    RelativeChange(lustre, prefetch)});
  }
  summary.PrintAscii(std::cout);

  // The staging-pipeline headline: does look-ahead beat demand-only
  // placement in epoch 1 (same config, same seeds)?
  PrintBanner(std::cout,
              "Figure 1 detail: first-epoch time, demand vs prefetch");
  Table first_epoch({"model", "monarch", "monarch-prefetch", "change"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    const double demand = cells[3 * models.size() + m].epoch_seconds[0].mean();
    const double prefetch =
        cells[4 * models.size() + m].epoch_seconds[0].mean();
    first_epoch.AddRow({models[m].name, Table::Num(demand, 2),
                        Table::Num(prefetch, 2),
                        RelativeChange(demand, prefetch)});
  }
  first_epoch.PrintAscii(std::cout);

  PrintPfsPressureTable("Figure 1: backend I/O operations per run", cells);
  WriteBenchJson(env, "fig1", cells);
  env.Cleanup();
  return 0;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
