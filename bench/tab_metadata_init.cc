// §IV-A metadata-initialisation measurements: the time MONARCH's
// metadata container needs to walk the PFS dataset directory and build
// the virtual namespace, as a function of file count.
//
// Shape targets from the paper: ~13 s for the 100 GiB dataset and ~52 s
// for the 200 GiB one — i.e. the cost scales with the number of files
// indexed (each file is one MDS round trip), and doubling the dataset
// roughly doubles (paper: ~4x, their 200 GiB set has more, smaller
// shards) the init time.
#include <iostream>

#include "bench_common.h"
#include "core/monarch.h"
#include "storage/engine_factory.h"

namespace monarch::bench {
namespace {

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("tab_meta");
  std::cout << "tab_metadata_init: scale=" << env.scale << "\n";

  PrintBanner(std::cout,
              "Metadata initialisation time vs dataset file count");
  Table table({"dataset", "files", "bytes", "init_seconds",
               "seconds_per_1k_files"});
  std::vector<std::pair<std::string, double>> json_metrics;

  struct Case {
    std::string name;
    workload::DatasetSpec spec;
  };
  auto spec100 = workload::DatasetSpec::ImageNet100GiB(env.scale);
  auto spec200 = workload::DatasetSpec::ImageNet200GiB(env.scale);
  // A wider sweep beyond the paper's two datasets: shrink samples so the
  // byte volume stays small while the file count grows.
  auto many = workload::DatasetSpec::Tiny();
  many.name = "many-files";
  many.directory = "many_files";
  many.num_files = 1024;
  many.samples_per_file = 1;
  many.mean_sample_bytes = 512;

  for (const Case& c : {Case{"imagenet-100g", spec100},
                        Case{"imagenet-200g", spec200},
                        Case{"many-files-1024", many}}) {
    const auto pfs_root = env.work_dir / c.name;
    {
      // Stage at host speed (untimed).
      auto raw = storage::MakeRawEngine(pfs_root);
      auto manifest = workload::GenerateDataset(*raw, c.spec);
      if (!manifest.ok()) {
        std::cerr << "generate failed: " << manifest.status() << "\n";
        return 1;
      }
    }

    // Build MONARCH over the Lustre-model engine (quiet: init time should
    // measure the MDS cost, not random contention) and time Populate.
    core::MonarchConfig config;
    config.cache_tiers.push_back(core::TierSpec{
        "local", storage::MakeRamEngine(), 1ULL << 30});
    config.pfs = core::TierSpec{
        "lustre", storage::MakeLustreEngine(pfs_root, 1, /*contended=*/false),
        0};
    config.dataset_dir = c.spec.directory;
    auto monarch = core::Monarch::Create(std::move(config));
    if (!monarch.ok()) {
      std::cerr << "create failed: " << monarch.status() << "\n";
      return 1;
    }
    const auto stats = monarch.value()->Stats();
    const double per_1k =
        stats.files_indexed == 0
            ? 0
            : stats.metadata_init_seconds * 1000.0 /
                  static_cast<double>(stats.files_indexed);
    table.AddRow({c.name, std::to_string(stats.files_indexed),
                  FormatByteSize(stats.dataset_bytes),
                  Table::Num(stats.metadata_init_seconds, 3),
                  Table::Num(per_1k, 3)});
    json_metrics.emplace_back(c.name + ".files",
                              static_cast<double>(stats.files_indexed));
    json_metrics.emplace_back(c.name + ".init_seconds",
                              stats.metadata_init_seconds);
    json_metrics.emplace_back(c.name + ".seconds_per_1k_files", per_1k);
    std::cout << "  done: " << c.name << "\n";
  }

  table.PrintAscii(std::cout);
  std::cout << "(paper: ~13 s for 100 GiB, ~52 s for 200 GiB at full "
               "scale — init time scales with file count)\n";
  WriteBenchJson(env, "tab_metadata_init", {}, json_metrics);
  env.Cleanup();
  return 0;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
