// Extension experiment (ISSUE 5): checkpoint write path — direct-PFS
// write-through vs the write-back checkpoint tier.
//
// Both arms push the SAME deterministic checkpoint stream (so the durable
// end state is byte-identical) into a contended Lustre-profile PFS, with
// a fixed "compute" gap between saves standing in for the training steps
// between checkpoint triggers:
//   - direct-pfs: every Save is a synchronous CRC-verified PFS write —
//     the trainer stalls for the whole PFS round trip (the vanilla
//     framework saver);
//   - write-back: Save returns once the checkpoint is committed on the
//     local SSD tier; the background drain lane overlaps the PFS push
//     with the compute gaps and Flush waits out the remainder.
// Expected shape: write-back stall_s collapses to roughly the local-SSD
// write time while both arms end with every checkpoint durable and
// CRC-identical on the PFS. durable_s shows the write-back arm paying
// the PFS cost in the background, not on the training path.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ckpt/checkpoint_manager.h"
#include "ckpt/direct_pfs_sink.h"
#include "core/storage_hierarchy.h"
#include "storage/engine_factory.h"
#include "util/clock.h"
#include "util/crc32c.h"

namespace monarch::bench {
namespace {

/// The deterministic per-checkpoint payload both arms save: pattern
/// bytes derived from the ordinal, so equal ordinals => equal bytes =>
/// equal CRCs across arms.
std::vector<std::byte> Payload(std::size_t bytes, int ordinal) {
  std::vector<std::byte> payload(bytes);
  std::uint64_t state = static_cast<std::uint64_t>(ordinal) * 1099511628211ull;
  for (std::byte& b : payload) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    b = static_cast<std::byte>(state >> 56);
  }
  return payload;
}

struct ArmResult {
  double stall_seconds = 0;    ///< summed Save() latency (the training stall)
  double durable_seconds = 0;  ///< start -> everything durable on the PFS
  std::vector<std::uint32_t> crcs;  ///< durable CRC per checkpoint, in order
};

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("checkpoint");
  const int saves = EnvInt("MONARCH_BENCH_CKPTS", 6);
  const auto bytes = static_cast<std::size_t>(
      16.0 * env.scale * static_cast<double>(kMiB));
  constexpr auto kComputeGap = std::chrono::milliseconds(25);
  std::cout << "ext_checkpoint: saves=" << saves << " bytes="
            << FormatByteSize(bytes) << " runs=" << env.runs << "\n";

  PrintBanner(std::cout,
              "Checkpoint stall: direct-PFS write-through vs write-back tier");

  RunningSummary direct_stall, direct_durable, wb_stall, wb_durable;
  bool crc_match = true;

  for (int run = 0; run < env.runs; ++run) {
    // Arm 1: write-through straight into the contended PFS.
    ArmResult direct;
    {
      auto pfs = storage::MakeLustreEngine(
          (env.work_dir / ("direct_pfs_r" + std::to_string(run))).string(),
          /*seed=*/7, /*contended=*/true);
      ckpt::DirectPfsSink sink(pfs);
      const Stopwatch total;
      for (int i = 0; i < saves; ++i) {
        const auto payload = Payload(bytes, i);
        const Stopwatch stall;
        if (auto s = sink.Save("model-s" + std::to_string(i), payload);
            !s.ok()) {
          std::cerr << "direct save failed: " << s << "\n";
          return 1;
        }
        direct.stall_seconds += stall.ElapsedSeconds();
        direct.crcs.push_back(Crc32c(payload));
        std::this_thread::sleep_for(kComputeGap);
      }
      direct.durable_seconds = total.ElapsedSeconds();
    }

    // Arm 2: write-back through a local-SSD tier, drained asynchronously
    // into an identically contended PFS.
    ArmResult wb;
    {
      const auto root = env.work_dir / ("wb_r" + std::to_string(run));
      std::vector<core::StorageDriverPtr> drivers;
      drivers.push_back(std::make_unique<core::StorageDriver>(
          "local-ssd", storage::MakeLocalSsdEngine((root / "ssd").string()),
          /*quota_bytes=*/static_cast<std::uint64_t>(bytes) * saves * 2,
          /*read_only=*/false));
      drivers.push_back(std::make_unique<core::StorageDriver>(
          "pfs", storage::MakeLustreEngine((root / "pfs").string(),
                                           /*seed=*/7, /*contended=*/true),
          /*quota_bytes=*/0, /*read_only=*/true));
      auto hierarchy = core::StorageHierarchy::Create(std::move(drivers));
      if (!hierarchy.ok()) {
        std::cerr << "hierarchy: " << hierarchy.status() << "\n";
        return 1;
      }
      ckpt::CheckpointManager manager(**hierarchy, {});
      const Stopwatch total;
      for (int i = 0; i < saves; ++i) {
        const auto payload = Payload(bytes, i);
        const Stopwatch stall;
        if (auto s = manager.Save("model-s" + std::to_string(i), payload);
            !s.ok()) {
          std::cerr << "write-back save failed: " << s << "\n";
          return 1;
        }
        wb.stall_seconds += stall.ElapsedSeconds();
        std::this_thread::sleep_for(kComputeGap);
      }
      if (auto s = manager.Flush(); !s.ok()) {
        std::cerr << "flush failed: " << s << "\n";
        return 1;
      }
      wb.durable_seconds = total.ElapsedSeconds();
      for (const auto& entry : manager.ManifestView()) {
        if (entry.state != ckpt::CkptState::kDurable) {
          std::cerr << "checkpoint " << entry.name << " not durable\n";
          return 1;
        }
        wb.crcs.push_back(entry.crc);
      }
    }

    // Equal end-state durability: both arms must hold the same
    // CRC-verified bytes on their PFS.
    crc_match = crc_match && direct.crcs == wb.crcs;
    direct_stall.Add(direct.stall_seconds);
    direct_durable.Add(direct.durable_seconds);
    wb_stall.Add(wb.stall_seconds);
    wb_durable.Add(wb.durable_seconds);
    std::cout << "  run " << run + 1 << "/" << env.runs << ": stall "
              << Table::Num(direct.stall_seconds, 3) << "s -> "
              << Table::Num(wb.stall_seconds, 3) << "s, crc "
              << (direct.crcs == wb.crcs ? "match" : "MISMATCH") << "\n";
  }

  Table table({"arm", "stall_s", "durable_s", "saves", "ckpt_bytes"});
  table.AddRow({"direct-pfs", MeanSd(direct_stall, 3), MeanSd(direct_durable, 3),
                std::to_string(saves), FormatByteSize(bytes)});
  table.AddRow({"write-back", MeanSd(wb_stall, 3), MeanSd(wb_durable, 3),
                std::to_string(saves), FormatByteSize(bytes)});
  table.PrintAscii(std::cout);
  std::cout << "\nReading: stall_s is what the training loop pays; "
            << "write-back vs direct-pfs: "
            << RelativeChange(direct_stall.mean(), wb_stall.mean())
            << ". Both arms end with every checkpoint durable on the PFS ("
            << (crc_match ? "CRCs identical" : "CRC MISMATCH — BUG") << "); "
            << "the write-back arm pays the PFS inside durable_s, "
            << "overlapped with compute.\n";

  WriteBenchJson(env, "ext_checkpoint", {},
                 {{"direct.stall_s", direct_stall.mean()},
                  {"direct.durable_s", direct_durable.mean()},
                  {"writeback.stall_s", wb_stall.mean()},
                  {"writeback.durable_s", wb_durable.mean()},
                  {"stall_ratio", direct_stall.mean() > 0
                                      ? wb_stall.mean() / direct_stall.mean()
                                      : 0.0},
                  {"crc_match", crc_match ? 1.0 : 0.0},
                  {"saves", static_cast<double>(saves)},
                  {"ckpt_bytes", static_cast<double>(bytes)}});
  env.Cleanup();
  return crc_match ? 0 : 1;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
