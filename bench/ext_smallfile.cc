// Small-file packing extension bench (ISSUE 9): packed container
// extents + chunk-granularity staging + transparent compression versus
// the naive loose-file layout, over the same ImageNet-style small-file
// dataset.
//
// Three arms, each a fresh Monarch over a memory PFS + one memory cache
// tier:
//   naive       loose files, whole-file staging (pack disabled)
//   packed-none container extents, 8 KiB chunk staging, codec none
//   packed-lz   container extents, 8 KiB chunk staging, codec lz
//
// Per arm: a timed first epoch (full sequential read of every file,
// CRC32C-sampled against the generator's ground truth), a warm second
// epoch, and a COLD sparse pass on a fresh Monarch that touches only the
// first 4 KiB of every 4th file — the partial-read pattern whose PFS
// traffic must scale with bytes *touched*, not file sizes.
//
// Gates (exit 1 on failure, 2 on error):
//   g1  sample digests byte-identical across all three arms
//   g2  packed sparse PFS bytes <= 0.5x the naive arm's
//   g3  packed sparse PFS bytes <= 4x the bytes actually touched
//   g4  packed-lz effective local-tier capacity >= 1.5x
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/monarch.h"
#include "storage/memory_engine.h"
#include "util/crc32c.h"
#include "workload/small_file_dataset.h"

namespace monarch::bench {
namespace {

constexpr std::uint64_t kChunkBytes = 8 * 1024;
constexpr std::uint64_t kProbeBytes = 4 * 1024;
constexpr std::uint64_t kSparseStride = 4;
constexpr std::uint64_t kDigestStride = 7;
constexpr std::uint64_t kTierQuota = 1ULL << 30;

struct ArmResult {
  std::string name;
  double first_epoch_s = 0;
  double warm_epoch_s = 0;
  std::uint64_t epoch_pfs_bytes = 0;
  std::uint64_t sparse_pfs_bytes = 0;
  std::uint64_t sparse_touched_bytes = 0;
  std::uint64_t local_tier_bytes = 0;
  double effective_capacity = 1.0;  ///< staged logical / stored bytes
  std::uint64_t chunk_hits = 0;
  std::uint64_t sample_digest = 0;
};

workload::SmallFileSpec DatasetSpec(double scale) {
  workload::SmallFileSpec spec;
  spec.directory = "data";
  spec.num_files = std::max<std::uint64_t>(
      96, static_cast<std::uint64_t>(768 * scale));
  spec.num_classes = 16;
  spec.mean_file_bytes = 64 * 1024;
  spec.file_size_jitter = 0.5;
  spec.run_fraction = 0.5;
  spec.seed = 7;
  spec.pack_extent_bytes = 4 * 1024 * 1024;
  return spec;
}

core::MonarchConfig ArmConfig(std::shared_ptr<storage::MemoryEngine> pfs,
                              std::shared_ptr<storage::MemoryEngine> local,
                              const std::string& codec) {
  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{"local", std::move(local),
                                              kTierQuota});
  config.pfs = core::TierSpec{"pfs", std::move(pfs), 0};
  config.dataset_dir = "data";
  config.placement.num_threads = 4;
  if (!codec.empty()) {
    config.placement.pack.enabled = true;
    config.placement.pack.chunk_bytes = kChunkBytes;
    config.placement.pack.codec = codec;
  }
  return config;
}

/// Full sequential read of every file; CRC32C every kDigestStride-th
/// file into a rolling digest checked against `expect_payloads`.
bool RunEpoch(core::Monarch& monarch, const workload::SmallFileSpec& spec,
              bool verify, std::uint64_t* digest) {
  std::vector<std::byte> buf;
  for (std::uint64_t f = 0; f < spec.num_files; ++f) {
    const std::string path = workload::SmallFilePath(spec, f);
    const std::vector<std::byte> expect = workload::SmallFilePayload(spec, f);
    buf.resize(expect.size());
    auto read = monarch.Read(path, 0, buf);
    if (!read.ok() || read.value() != expect.size()) {
      std::cerr << "epoch read failed: " << path << "\n";
      return false;
    }
    if (verify && f % kDigestStride == 0) {
      const std::uint32_t crc = Crc32c(buf);
      if (crc != Crc32c(expect)) {
        std::cerr << "payload mismatch: " << path << "\n";
        return false;
      }
      *digest = *digest * 1315423911ULL + crc;
    }
  }
  return true;
}

/// One arm, end to end. `codec` empty = naive loose-file arm.
bool RunArm(const workload::SmallFileSpec& spec, const std::string& codec,
            const std::string& label, ArmResult* out) {
  out->name = label;
  auto pfs = std::make_shared<storage::MemoryEngine>("pfs");
  const bool packed = !codec.empty();
  auto manifest = packed ? workload::GeneratePackedSmallFiles(*pfs, spec)
                         : workload::GenerateSmallFiles(*pfs, spec);
  if (!manifest.ok()) {
    std::cerr << label << ": generate failed: " << manifest.status() << "\n";
    return false;
  }

  // --- First + warm epochs --------------------------------------------
  auto local = std::make_shared<storage::MemoryEngine>("local");
  auto monarch = core::Monarch::Create(ArmConfig(pfs, local, codec));
  if (!monarch.ok()) {
    std::cerr << label << ": create failed: " << monarch.status() << "\n";
    return false;
  }
  const auto pfs_before = pfs->Stats().Snapshot();
  const Stopwatch first_timer;
  if (!RunEpoch(**monarch, spec, /*verify=*/true, &out->sample_digest)) {
    return false;
  }
  monarch.value()->DrainPlacements();
  out->first_epoch_s = first_timer.ElapsedSeconds();
  out->epoch_pfs_bytes = (pfs->Stats().Snapshot() - pfs_before).bytes_read;

  const Stopwatch warm_timer;
  std::uint64_t warm_digest = 0;
  if (!RunEpoch(**monarch, spec, /*verify=*/false, &warm_digest)) {
    return false;
  }
  out->warm_epoch_s = warm_timer.ElapsedSeconds();
  out->local_tier_bytes = local->TotalBytes();

  const auto stats = monarch.value()->Stats();
  out->chunk_hits = stats.chunk_hits;
  if (stats.placement.chunk_stored_bytes > 0) {
    out->effective_capacity =
        static_cast<double>(stats.placement.bytes_staged) /
        static_cast<double>(stats.placement.chunk_stored_bytes);
  }
  monarch.value()->Shutdown();

  // --- Cold sparse pass: fresh Monarch + fresh tier, same dataset -----
  auto sparse_local = std::make_shared<storage::MemoryEngine>("local");
  auto sparse = core::Monarch::Create(ArmConfig(pfs, sparse_local, codec));
  if (!sparse.ok()) {
    std::cerr << label << ": sparse create failed: " << sparse.status()
              << "\n";
    return false;
  }
  const auto sparse_before = pfs->Stats().Snapshot();
  std::vector<std::byte> probe(kProbeBytes);
  for (std::uint64_t f = 0; f < spec.num_files; f += kSparseStride) {
    auto read =
        sparse.value()->Read(workload::SmallFilePath(spec, f), 0, probe);
    if (!read.ok()) {
      std::cerr << label << ": sparse read failed\n";
      return false;
    }
    out->sparse_touched_bytes += read.value();
  }
  sparse.value()->DrainPlacements();
  out->sparse_pfs_bytes =
      (pfs->Stats().Snapshot() - sparse_before).bytes_read;
  sparse.value()->Shutdown();
  return true;
}

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("ext_smallfile");
  const workload::SmallFileSpec spec = DatasetSpec(env.scale);
  std::cout << "ext_smallfile: " << spec.num_files << " files, mean "
            << FormatByteSize(spec.mean_file_bytes) << ", chunk "
            << FormatByteSize(kChunkBytes) << "\n";

  std::vector<ArmResult> arms(3);
  if (!RunArm(spec, "", "naive", &arms[0]) ||
      !RunArm(spec, "none", "packed-none", &arms[1]) ||
      !RunArm(spec, "lz", "packed-lz", &arms[2])) {
    return 2;
  }

  PrintBanner(std::cout, "Small-file dataset: packed chunks vs naive");
  Table table({"arm", "first_ep_s", "warm_ep_s", "epoch_pfs", "sparse_pfs",
               "touched", "tier_bytes", "eff_cap"});
  std::vector<std::pair<std::string, double>> json_metrics;
  for (const ArmResult& arm : arms) {
    table.AddRow({arm.name, Table::Num(arm.first_epoch_s, 3),
                  Table::Num(arm.warm_epoch_s, 3),
                  FormatByteSize(arm.epoch_pfs_bytes),
                  FormatByteSize(arm.sparse_pfs_bytes),
                  FormatByteSize(arm.sparse_touched_bytes),
                  FormatByteSize(arm.local_tier_bytes),
                  Table::Num(arm.effective_capacity, 2) + "x"});
    json_metrics.emplace_back(arm.name + ".first_epoch_seconds",
                              arm.first_epoch_s);
    json_metrics.emplace_back(arm.name + ".warm_epoch_seconds",
                              arm.warm_epoch_s);
    json_metrics.emplace_back(arm.name + ".epoch_pfs_bytes",
                              static_cast<double>(arm.epoch_pfs_bytes));
    json_metrics.emplace_back(arm.name + ".sparse_pfs_bytes",
                              static_cast<double>(arm.sparse_pfs_bytes));
    json_metrics.emplace_back(arm.name + ".sparse_touched_bytes",
                              static_cast<double>(arm.sparse_touched_bytes));
    json_metrics.emplace_back(arm.name + ".local_tier_bytes",
                              static_cast<double>(arm.local_tier_bytes));
    json_metrics.emplace_back(arm.name + ".effective_capacity",
                              arm.effective_capacity);
    json_metrics.emplace_back(arm.name + ".chunk_hits",
                              static_cast<double>(arm.chunk_hits));
  }
  table.PrintAscii(std::cout);

  // --- Gates -----------------------------------------------------------
  bool ok = true;
  const ArmResult& naive = arms[0];
  if (arms[1].sample_digest != naive.sample_digest ||
      arms[2].sample_digest != naive.sample_digest) {
    std::cout << "GATE g1 FAILED: sample digests differ across arms\n";
    ok = false;
  }
  for (std::size_t i = 1; i < arms.size(); ++i) {
    const ArmResult& arm = arms[i];
    if (2 * arm.sparse_pfs_bytes > naive.sparse_pfs_bytes) {
      std::cout << "GATE g2 FAILED: " << arm.name << " sparse PFS bytes "
                << arm.sparse_pfs_bytes << " > 0.5x naive "
                << naive.sparse_pfs_bytes << "\n";
      ok = false;
    }
    if (arm.sparse_pfs_bytes > 4 * arm.sparse_touched_bytes) {
      std::cout << "GATE g3 FAILED: " << arm.name << " sparse PFS bytes "
                << arm.sparse_pfs_bytes << " > 4x touched "
                << arm.sparse_touched_bytes << "\n";
      ok = false;
    }
  }
  if (arms[2].effective_capacity < 1.5) {
    std::cout << "GATE g4 FAILED: packed-lz effective capacity "
              << Table::Num(arms[2].effective_capacity, 2) << "x < 1.5x\n";
    ok = false;
  }
  json_metrics.emplace_back("gates_passed", ok ? 1.0 : 0.0);
  WriteBenchJson(env, "ext_smallfile", {}, json_metrics);
  env.Cleanup();

  if (!ok) return 1;
  std::cout << "GATES OK: sparse PFS traffic scales with bytes touched; "
               "lz stretches the local tier "
            << Table::Num(arms[2].effective_capacity, 2) << "x\n";
  return 0;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
