// Extension experiment (§VI future work): MONARCH under a PyTorch-style
// map-style DataLoader instead of the tf.data pipeline.
//
// The access pattern is maximally hostile to file-level staging: the
// sampler permutes SAMPLE indices across the whole dataset, so workers
// issue small random-offset reads spread over every record file and no
// file is ever streamed sequentially to its end. Two consequences to
// measure:
//   - the §III-B full-file fetch is *essential* here — with it disabled,
//     nothing ever stages (every read is partial) and MONARCH degrades
//     to vanilla;
//   - with it enabled, the very first sample drawn from a file stages
//     the whole file, so the PFS share of reads decays rapidly even
//     within epoch 1.
#include <iostream>

#include "bench_common.h"
#include "dlsim/map_style_loader.h"
#include "dlsim/monarch_opener.h"
#include "storage/engine_factory.h"

namespace monarch::bench {
namespace {

struct ArmResult {
  double epoch_seconds_mean = 0;
  double epoch1_seconds = 0;
  std::uint64_t pfs_reads = 0;
  std::uint64_t placed = 0;
};

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("pytorch");
  const double scale = EnvDouble("MONARCH_BENCH_SCALE", 0.5) * 0.5;
  std::cout << "ext_pytorch: scale=" << scale << " epochs=" << env.epochs
            << "\n";

  const auto spec = workload::DatasetSpec::ImageNet100GiB(scale);
  const auto local_quota = static_cast<std::uint64_t>(
      115.0 * scale * static_cast<double>(kMiB));

  struct Arm {
    std::string name;
    bool use_monarch;
    bool full_fetch;
  };
  const std::vector<Arm> arms{
      {"vanilla-lustre", false, true},
      {"monarch", true, true},
      {"monarch (full-fetch OFF)", true, false},
  };

  PrintBanner(std::cout,
              "PyTorch-style map-style loading (random per-sample access)");
  Table table({"arm", "epoch1_s", "mean_epoch_s", "pfs_reads",
               "files_placed"});
  std::vector<std::pair<std::string, double>> json_metrics;

  for (const Arm& arm : arms) {
    const auto pfs_root = env.work_dir / "pfs";
    auto manifest = dlsim::EnsureDataset(pfs_root, spec);
    if (!manifest.ok()) {
      std::cerr << "dataset failed: " << manifest.status() << "\n";
      return 1;
    }
    auto pfs_engine = storage::MakeLustreEngine(pfs_root, 11, true);

    std::unique_ptr<core::Monarch> monarch;
    dlsim::RecordFileOpenerPtr opener;
    if (arm.use_monarch) {
      auto local_engine = storage::MakeLocalSsdEngine(
          env.work_dir / ("local_" + std::to_string(&arm - arms.data())));
      core::MonarchConfig config;
      config.cache_tiers.push_back(
          core::TierSpec{"local-ssd", local_engine, local_quota});
      config.pfs = core::TierSpec{"lustre", pfs_engine, 0};
      config.dataset_dir = spec.directory;
      config.placement.fetch_full_file_on_partial_read = arm.full_fetch;
      auto created = core::Monarch::Create(std::move(config));
      if (!created.ok()) {
        std::cerr << "monarch failed: " << created.status() << "\n";
        return 1;
      }
      monarch = std::move(created).value();
      opener = std::make_unique<dlsim::MonarchOpener>(*monarch);
    } else {
      opener = std::make_unique<dlsim::EngineOpener>(pfs_engine);
    }

    // Index once (untimed — PyTorch users ship precomputed .idx files),
    // through a raw engine so indexing cost doesn't pollute PFS stats.
    auto raw = storage::MakeRawEngine(pfs_root);
    dlsim::EngineOpener raw_opener(raw);
    auto dataset =
        dlsim::IndexedDataset::Build(manifest->file_paths, raw_opener);
    if (!dataset.ok()) {
      std::cerr << "index failed: " << dataset.status() << "\n";
      return 1;
    }

    const auto pfs_before = pfs_engine->Stats().Snapshot();
    double epoch1 = 0;
    double total = 0;
    for (int e = 1; e <= env.epochs; ++e) {
      dlsim::ResourceMonitor monitor(4, 1);
      dlsim::MapLoaderConfig loader_config;
      loader_config.num_workers = 4;
      loader_config.shuffle_seed = 77;
      loader_config.preprocess_per_sample = Micros(150);

      const Stopwatch wall;
      dlsim::MapStyleEpoch epoch(*dataset, e, *opener, monitor,
                                 loader_config);
      std::uint64_t consumed = 0;
      while (epoch.queue().Pop().has_value()) ++consumed;
      epoch.Finish();
      if (!epoch.status().ok()) {
        std::cerr << "epoch failed: " << epoch.status() << "\n";
        return 1;
      }
      const double seconds = wall.ElapsedSeconds();
      if (e == 1) epoch1 = seconds;
      total += seconds;
      if (monarch) monarch->DrainPlacements();
    }

    ArmResult result;
    result.epoch1_seconds = epoch1;
    result.epoch_seconds_mean = total / env.epochs;
    result.pfs_reads =
        (pfs_engine->Stats().Snapshot() - pfs_before).read_ops;
    result.placed = monarch ? monarch->Stats().placement.completed : 0;

    table.AddRow({arm.name, Table::Num(result.epoch1_seconds, 2),
                  Table::Num(result.epoch_seconds_mean, 2),
                  std::to_string(result.pfs_reads),
                  std::to_string(result.placed)});
    json_metrics.emplace_back(arm.name + ".epoch1_s", result.epoch1_seconds);
    json_metrics.emplace_back(arm.name + ".mean_epoch_s",
                              result.epoch_seconds_mean);
    json_metrics.emplace_back(arm.name + ".pfs_reads",
                              static_cast<double>(result.pfs_reads));
    json_metrics.emplace_back(arm.name + ".files_placed",
                              static_cast<double>(result.placed));
    std::cout << "  done: " << arm.name << "\n";
  }

  table.PrintAscii(std::cout);
  std::cout <<
      "\nReading: under per-sample random access every read is partial, "
      "so the full-file\nfetch is the only staging trigger — disabling it "
      "leaves MONARCH at vanilla speed\nwith zero files placed, while the "
      "paper's configuration stages the dataset from\nthe first samples "
      "drawn and pulls steady-state epochs down to local speed.\n";
  WriteBenchJson(env, "ext_pytorch", {}, json_metrics);
  env.Cleanup();
  return 0;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
