// Extension experiment (paper §I motivation + §VI future work): K
// concurrent training jobs sharing ONE PFS device — the scenario that
// motivates MONARCH in the first place ("the PFS can quickly get
// saturated with simultaneous storage requests").
//
// Unlike fig1-fig4 (where one job contends with a *synthetic* background
// load), here the contention is real: every job's reads drain the same
// bandwidth token bucket. Expected shape:
//   - vanilla: per-job epoch time grows roughly linearly with job count
//     in the I/O-bound regime (jobs split the PFS), every epoch;
//   - MONARCH: epoch 1 is still contended (everyone stages at once), but
//     epochs 2+ decouple — per-job times approach the single-job local
//     figure, and aggregate PFS traffic drops by ~(E-1)/E.
#include <iostream>

#include "bench_common.h"
#include "dlsim/cluster.h"
#include "qos/tenant.h"

namespace monarch::bench {
namespace {

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("multijob");
  env.runs = EnvInt("MONARCH_BENCH_RUNS", 1);
  // Smaller default dataset: the K-job runs multiply the work.
  const double scale = EnvDouble("MONARCH_BENCH_SCALE", 0.5) * 0.5;
  std::cout << "ext_multijob: scale=" << scale << " epochs=" << env.epochs
            << "\n";

  PrintBanner(std::cout,
              "Multi-job interference on a shared PFS (LeNet)");
  Table table({"jobs", "setup", "mean_epoch_s", "epoch1_s", "steady_s",
               "per-job_total_s", "aggregate_pfs_reads", "pfs_GiB",
               "peer_GiB"});
  std::vector<std::pair<std::string, double>> json_metrics;

  // Third arm (ISSUE 4): monarch with cooperative peer caching — the K
  // nodes shard staging across a cluster directory and read each
  // other's copies over a simulated interconnect, so the aggregate PFS
  // staging traffic is ~1× the dataset instead of K×.
  struct Arm {
    const char* json_key;
    const char* display;
    const char* dir_prefix;
    bool use_monarch;
    bool peer_sharing;
  };
  constexpr Arm kArms[] = {
      {"vanilla", "vanilla-lustre", "v", false, false},
      {"monarch", "monarch", "m", true, false},
      {"monarch-peer", "monarch-peer", "p", true, true},
  };

  for (const int num_jobs : {1, 2, 4}) {
    for (const Arm& arm : kArms) {
      dlsim::ClusterConfig config;
      config.num_jobs = num_jobs;
      config.use_monarch = arm.use_monarch;
      config.peer_sharing = arm.peer_sharing;
      config.dataset = workload::DatasetSpec::ImageNet100GiB(scale);
      config.model = dlsim::ModelProfile::LeNet();
      config.epochs = env.epochs;
      config.local_quota_bytes = static_cast<std::uint64_t>(
          115.0 * scale * static_cast<double>(kMiB));
      // Replicated staging (ISSUE 7): every file has two live holders,
      // so the peer tier keeps serving through single-node loss.
      if (arm.peer_sharing) config.peer_replication = 2;
      config.seed = 5;

      auto result = dlsim::RunClusterExperiment(
          env.work_dir / "pfs",
          env.work_dir / (arm.dir_prefix + std::to_string(num_jobs)),
          config);
      if (!result.ok()) {
        std::cerr << "cluster run failed: " << result.status() << "\n";
        return 1;
      }

      const std::string arm_key =
          std::string(arm.json_key) + ".jobs" + std::to_string(num_jobs);
      RunningSummary epoch1;
      RunningSummary steady;
      for (const auto& job : result.value().jobs) {
        epoch1.Add(job.training.EpochSeconds(1));
        for (int e = 2; e <= env.epochs; ++e) {
          steady.Add(job.training.EpochSeconds(e));
        }
      }
      const double gib = static_cast<double>(1ULL << 30);
      table.AddRow({std::to_string(num_jobs), arm.display,
                    Table::Num(result.value().MeanEpochSeconds(), 2),
                    Table::Num(epoch1.mean(), 2),
                    Table::Num(steady.mean(), 2),
                    Table::Num(result.value().MeanTotalSeconds(), 2),
                    std::to_string(result.value().TotalPfsReadOps()),
                    Table::Num(static_cast<double>(
                                   result.value().TotalPfsReadBytes()) /
                                   gib,
                               3),
                    Table::Num(static_cast<double>(result.value().peer_bytes) /
                                   gib,
                               3)});
      json_metrics.emplace_back(arm_key + ".epoch1_s", epoch1.mean());
      json_metrics.emplace_back(arm_key + ".steady_epoch_s", steady.mean());
      json_metrics.emplace_back(
          arm_key + ".pfs_reads",
          static_cast<double>(result.value().TotalPfsReadOps()));
      json_metrics.emplace_back(
          arm_key + ".pfs_bytes",
          static_cast<double>(result.value().TotalPfsReadBytes()));
      if (arm.peer_sharing) {
        json_metrics.emplace_back(
            arm_key + ".peer_bytes",
            static_cast<double>(result.value().peer_bytes));
        json_metrics.emplace_back(
            arm_key + ".peer_transfers",
            static_cast<double>(result.value().peer_transfers));
      }
      std::cout << "  done: jobs=" << num_jobs << " " << arm.display << "\n";
    }
  }

  table.PrintAscii(std::cout);

  // QoS arm (ISSUE 10): one trainer shares the cluster with three
  // full-scan data-prep jobs. With `[qos]` off the scans compete head-on
  // for the PFS and can evict the trainer's resident working set; with
  // QoS on each job is a tenant — the scans are squeezed to their
  // weighted bandwidth share and scan-resistance pins the trainer's
  // files (cross_class_evictions must stay 0). The hard gates live in
  // bench/ext_qos; this arm shows the same machinery end-to-end through
  // the dlsim cluster.
  PrintBanner(std::cout, "QoS arm: trainer vs 3 full-scan jobs (ISSUE 10)");
  Table qos_table({"qos", "trainer_epoch1_s", "trainer_steady_s",
                   "scan_total_s", "x_class_evict", "stage_refusals"});
  for (const bool qos_on : {false, true}) {
    dlsim::ClusterConfig config;
    config.num_jobs = 4;
    config.use_monarch = true;
    config.dataset = workload::DatasetSpec::ImageNet100GiB(scale);
    config.model = dlsim::ModelProfile::LeNet();
    config.epochs = env.epochs;
    config.local_quota_bytes = static_cast<std::uint64_t>(
        115.0 * scale * static_cast<double>(kMiB));
    config.seed = 7;
    // Explicit heavyweight trainer share: a tenant's bytes are charged
    // on the PFS read AND the tier write, so the trainer's nominal share
    // must cover roughly twice its demand for the broker to stay out of
    // its way while still squeezing the three scans.
    config.job_specs = {
        {dlsim::JobWorkload::kTraining, qos::IoClass::kTraining, 12.0},
        {dlsim::JobWorkload::kScan, qos::IoClass::kScan, 0},
        {dlsim::JobWorkload::kScan, qos::IoClass::kScan, 0},
        {dlsim::JobWorkload::kScan, qos::IoClass::kScan, 0},
    };
    if (qos_on) {
      config.qos.enabled = true;
      // 2x the PFS device (200 MB/s): the scans' aggregate share lands
      // under the device bandwidth, leaving the trainer real headroom.
      config.qos.total_bandwidth_bps = 400e6;
    }

    auto result = dlsim::RunClusterExperiment(
        env.work_dir / "pfs",
        env.work_dir / (std::string("q") + (qos_on ? "on" : "off")), config);
    if (!result.ok()) {
      std::cerr << "qos-arm cluster run failed: " << result.status() << "\n";
      return 1;
    }

    const dlsim::JobResult& trainer = result.value().jobs.at(0);
    RunningSummary trainer_steady;
    for (int e = 2; e <= env.epochs; ++e) {
      trainer_steady.Add(trainer.training.EpochSeconds(e));
    }
    RunningSummary scan_total;
    std::uint64_t cross_class = 0;
    std::uint64_t refusals = 0;
    for (const auto& job : result.value().jobs) {
      if (job.io_class == qos::IoClass::kScan) {
        scan_total.Add(job.training.total_seconds);
      }
      cross_class += job.monarch_stats.placement.cross_class_evictions;
      refusals += job.monarch_stats.placement.scan_stage_refusals;
    }

    const std::string arm_key = qos_on ? "qos.on" : "qos.off";
    qos_table.AddRow({qos_on ? "on" : "off",
                      Table::Num(trainer.training.EpochSeconds(1), 2),
                      Table::Num(trainer_steady.mean(), 2),
                      Table::Num(scan_total.mean(), 2),
                      std::to_string(cross_class), std::to_string(refusals)});
    json_metrics.emplace_back(arm_key + ".trainer_epoch1_s",
                              trainer.training.EpochSeconds(1));
    json_metrics.emplace_back(arm_key + ".trainer_steady_s",
                              trainer_steady.mean());
    json_metrics.emplace_back(arm_key + ".scan_total_s", scan_total.mean());
    json_metrics.emplace_back(arm_key + ".cross_class_evictions",
                              static_cast<double>(cross_class));
    json_metrics.emplace_back(arm_key + ".scan_stage_refusals",
                              static_cast<double>(refusals));
    std::cout << "  done: qos=" << (qos_on ? "on" : "off") << "\n";
  }
  qos_table.PrintAscii(std::cout);

  std::cout <<
      "\nReading: vanilla steady-state epochs inflate with job count "
      "(jobs split the shared\nPFS); MONARCH's steady-state epochs stay "
      "near the single-job local time because the\njobs leave the PFS "
      "after staging — the aggregate-PFS-reads column shows why. The\n"
      "monarch-peer arm shards staging across the jobs: pfs_GiB stays "
      "near 1x the dataset\nregardless of K, with the difference carried "
      "by the interconnect (peer_GiB). The qos\narm shows class isolation: "
      "with [qos] on the trainer's epochs are unchanged while\nthe three "
      "scan jobs absorb the whole squeeze of the weighted shares.\n";
  WriteBenchJson(env, "ext_multijob", {}, json_metrics);
  env.Cleanup();
  return 0;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
