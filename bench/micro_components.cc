// Component micro-benchmarks (google-benchmark): the hot paths the
// middleware touches on every read — CRC32C, TFRecord framing, the
// metadata container's lookup tables, the placement thread pool, and the
// end-to-end Monarch::Read overhead over an in-memory hierarchy (i.e.
// the middleware's own cost with device models and disks taken out).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/monarch.h"
#include "storage/memory_engine.h"
#include "tfrecord/format.h"
#include "tfrecord/reader.h"
#include "tfrecord/writer.h"
#include "util/crc32c.h"
#include "util/rng.h"
#include "util/sharded_map.h"
#include "util/thread_pool.h"

namespace monarch {
namespace {

std::vector<std::byte> RandomBytes(std::size_t size, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::byte> data(size);
  for (auto& b : data) b = static_cast<std::byte>(rng() & 0xFF);
  return data;
}

void BM_Crc32c(benchmark::State& state) {
  const auto data = RandomBytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_TFRecordEncode(benchmark::State& state) {
  const auto payload =
      RandomBytes(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    tfrecord::TFRecordWriter writer;
    writer.Append(payload);
    benchmark::DoNotOptimize(writer.contents().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TFRecordEncode)->Arg(4096)->Arg(65536);

void BM_TFRecordDecode(benchmark::State& state) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  tfrecord::TFRecordWriter writer;
  const auto payload =
      RandomBytes(static_cast<std::size_t>(state.range(0)), 3);
  for (int i = 0; i < 64; ++i) writer.Append(payload);
  (void)writer.Flush(*engine, "f");

  for (auto _ : state) {
    tfrecord::EngineSource source(engine, "f");
    tfrecord::TFRecordReader reader(source);
    while (reader.ReadRecord().ok()) {
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          state.range(0));
}
BENCHMARK(BM_TFRecordDecode)->Arg(4096)->Arg(65536);

void BM_ShardedMapLookup(benchmark::State& state) {
  ShardedMap<std::string, int> map(64);
  const int n = 100000;
  for (int i = 0; i < n; ++i) map.Insert("file-" + std::to_string(i), i);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.Find("file-" + std::to_string(i++ % n)));
  }
}
BENCHMARK(BM_ShardedMapLookup)->Threads(1)->Threads(8);

void BM_ShardedMapInsert(benchmark::State& state) {
  // Fresh map per iteration batch; measures insert throughput.
  ShardedMap<std::uint64_t, int> map(64);
  std::uint64_t i =
      static_cast<std::uint64_t>(state.thread_index()) << 40;
  for (auto _ : state) {
    map.Insert(i++, 1);
  }
}
BENCHMARK(BM_ShardedMapInsert)->Threads(1)->Threads(8);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::atomic<int> remaining{64};
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&remaining] { remaining.fetch_sub(1); });
    }
    pool.Drain();
    if (remaining.load() != 0) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(6)->Arg(12);

/// The middleware's own per-read overhead: Monarch::Read over in-memory
/// engines (no device models), steady state (file already placed).
void BM_MonarchReadSteadyState(benchmark::State& state) {
  auto pfs = std::make_shared<storage::MemoryEngine>("pfs");
  auto local = std::make_shared<storage::MemoryEngine>("local");
  const auto payload =
      RandomBytes(static_cast<std::size_t>(state.range(0)), 4);
  (void)pfs->Write("data/f", payload);

  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{"local", local, 1ULL << 30});
  config.pfs = core::TierSpec{"pfs", pfs, 0};
  config.dataset_dir = "data";
  auto monarch = core::Monarch::Create(std::move(config));
  if (!monarch.ok()) {
    state.SkipWithError("monarch create failed");
    return;
  }
  std::vector<std::byte> buf(payload.size());
  (void)monarch.value()->Read("data/f", 0, buf);  // trigger placement
  monarch.value()->DrainPlacements();

  for (auto _ : state) {
    benchmark::DoNotOptimize(monarch.value()->Read("data/f", 0, buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MonarchReadSteadyState)->Arg(4096)->Arg(65536);

/// Direct engine read for comparison (what the middleware adds on top).
void BM_DirectEngineRead(benchmark::State& state) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  const auto payload =
      RandomBytes(static_cast<std::size_t>(state.range(0)), 5);
  (void)engine->Write("f", payload);
  std::vector<std::byte> buf(payload.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Read("f", 0, buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DirectEngineRead)->Arg(4096)->Arg(65536);

void BM_MetadataPopulate(benchmark::State& state) {
  auto engine = std::make_shared<storage::MemoryEngine>();
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    (void)engine->Write("data/f" + std::to_string(i),
                        RandomBytes(16, static_cast<std::uint64_t>(i)));
  }
  for (auto _ : state) {
    core::MetadataContainer container;
    benchmark::DoNotOptimize(container.Populate(*engine, "data", 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_MetadataPopulate)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace monarch

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_micro_components.json (in $MONARCH_BENCH_JSON_DIR when set) so
// this binary emits machine-readable results like the figure benches do.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out=")) {
      has_out = true;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    std::string dir = ".";
    if (const char* env = std::getenv("MONARCH_BENCH_JSON_DIR")) dir = env;
    out_flag = "--benchmark_out=" + dir + "/BENCH_micro_components.json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
