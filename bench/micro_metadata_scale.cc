// Metadata flatness at small-file scale (ISSUE 9). The packing tier
// lets one job index O(10^6) logical files, so the virtual namespace
// must stay flat: MetadataContainer lookups may not structurally degrade
// (longer probe chains, rehash stalls, lock convoys) as the entry count
// grows three orders of magnitude.
//
// The sweep registers 1k -> 1M synthetic small-file names and measures
// per-lookup latency two ways:
//   steady p99  — repeated random probes over a fixed sample of names
//                 (post-warmup, so the cost measured is hash + probe +
//                 snapshot acquire — the data structure itself). This is
//                 the GATED number: max/min across the sweep must stay
//                 within MONARCH_META_P99_DRIFT (default 2.0x).
//   random p99  — single cold probes across the whole namespace,
//                 reported (not gated) so DRAM-capacity effects stay
//                 visible in the JSON.
//
// Exit codes: 0 ok, 1 gate failed, 2 setup error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/metadata_container.h"
#include "util/rng.h"

namespace monarch::bench {
namespace {

constexpr int kPfsLevel = 1;
constexpr std::size_t kBatches = 256;
constexpr std::size_t kOpsPerBatch = 512;
// Steady-state probe set: small enough that the probed buckets, nodes,
// keys, and refcount lines stay cache-resident at every namespace size,
// so the gated number isolates the structure (hash + probe + snapshot
// acquire) from LLC capacity. The ungated random profile uses a bigger,
// unwarmed pool to keep the capacity effect visible.
constexpr std::size_t kSteadyPool = 256;
constexpr std::size_t kRandomPool = 4096;

std::string NameOf(std::uint64_t index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "data/class_%03llu/img_%07llu.bin",
                static_cast<unsigned long long>(index % 997),
                static_cast<unsigned long long>(index));
  return buf;
}

struct LookupProfile {
  double p50_ns = 0;
  double p99_ns = 0;
};

/// Run `kBatches` timed batches of `kOpsPerBatch` lookups drawn from
/// `pool` and return the per-op latency distribution over batch means.
/// With `reps` > 1 each batch repeats the identical lookup sequence and
/// keeps the fastest repetition — min-of-repeats removes scheduler
/// preemption spikes from the tail so p99 reflects the structure, not
/// the machine. reps=1 keeps first-touch (cold) costs in the numbers.
LookupProfile ProfileLookups(const core::MetadataContainer& container,
                             const std::vector<std::string>& pool,
                             Xoshiro256& rng, int reps,
                             std::uint64_t* found) {
  std::vector<std::size_t> indices(kOpsPerBatch);
  std::vector<double> per_op_ns;
  per_op_ns.reserve(kBatches);
  for (std::size_t b = 0; b < kBatches; ++b) {
    for (std::size_t i = 0; i < kOpsPerBatch; ++i) {
      indices[i] = rng.NextBounded(pool.size());
    }
    double best_ns = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const Stopwatch timer;
      for (const std::size_t idx : indices) {
        *found += container.Lookup(pool[idx]) != nullptr;
      }
      const double ns = ToSeconds(timer.Elapsed()) * 1e9 /
                        static_cast<double>(kOpsPerBatch);
      if (rep == 0 || ns < best_ns) best_ns = ns;
    }
    per_op_ns.push_back(best_ns);
  }
  std::sort(per_op_ns.begin(), per_op_ns.end());
  LookupProfile profile;
  profile.p50_ns = per_op_ns[per_op_ns.size() / 2];
  profile.p99_ns = per_op_ns[per_op_ns.size() * 99 / 100];
  return profile;
}

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("micro_metadata_scale");
  const double drift_limit = EnvDouble("MONARCH_META_P99_DRIFT", 2.0);
  std::cout << "micro_metadata_scale: scale=" << env.scale
            << " p99 drift gate=" << drift_limit << "x\n";

  std::vector<std::uint64_t> counts;
  for (const std::uint64_t base : {1'000ULL, 10'000ULL, 100'000ULL,
                                   1'000'000ULL}) {
    const auto scaled = static_cast<std::uint64_t>(
        std::max(1000.0, static_cast<double>(base) * env.scale));
    if (counts.empty() || counts.back() < scaled) counts.push_back(scaled);
  }

  PrintBanner(std::cout,
              "MetadataContainer lookup latency vs namespace size");
  Table table({"files", "register_s", "reg_files_per_s", "steady_p50_ns",
               "steady_p99_ns", "random_p99_ns"});
  std::vector<std::pair<std::string, double>> json_metrics;
  std::uint64_t found = 0;

  // Build every namespace size up front so the gated profiles can be
  // interleaved: host noise (preemption storms, frequency shifts) then
  // hits all sizes of a round equally instead of falsifying one row.
  struct SweepPointState {
    std::uint64_t count = 0;
    std::unique_ptr<core::MetadataContainer> container;
    Xoshiro256 rng{0};
    std::vector<std::string> sample;       ///< steady-state probe set
    std::vector<std::string> random_pool;  ///< cold whole-namespace set
    double register_s = 0;
    LookupProfile steady;
    LookupProfile random;
  };
  std::vector<SweepPointState> points;
  for (const std::uint64_t count : counts) {
    SweepPointState point;
    point.count = count;
    point.container = std::make_unique<core::MetadataContainer>();
    const Stopwatch register_timer;
    for (std::uint64_t i = 0; i < count; ++i) {
      if (!point.container->Register(NameOf(i), 4096 + (i % 57) * 64,
                                     kPfsLevel)) {
        std::cerr << "duplicate register at " << i << "\n";
        return 2;
      }
    }
    point.register_s = register_timer.ElapsedSeconds();
    if (point.container->FileCount() != count) {
      std::cerr << "file count mismatch: " << point.container->FileCount()
                << "\n";
      return 2;
    }
    point.rng = Xoshiro256(count ^ 0x9E3779B97F4A7C15ULL);
    point.sample.reserve(kSteadyPool);
    for (std::size_t i = 0; i < kSteadyPool; ++i) {
      point.sample.push_back(NameOf(point.rng.NextBounded(count)));
    }
    point.random_pool.reserve(kRandomPool);
    for (std::size_t i = 0; i < kRandomPool; ++i) {
      point.random_pool.push_back(NameOf(point.rng.NextBounded(count)));
    }
    // Warmup passes build the RCU snapshots and fault the probed nodes
    // in before anything is timed.
    for (int pass = 0; pass < 4; ++pass) {
      for (const std::string& name : point.sample) {
        found += point.container->Lookup(name) != nullptr;
      }
    }
    std::cout << "  registered: " << count << " files in "
              << Table::Num(point.register_s, 3) << "s\n";
    points.push_back(std::move(point));
  }

  // Gated steady-state measurement: several interleaved rounds over all
  // sizes; the drift ratio is taken from the quietest round (one clean
  // round shows the structure is flat — a noisy host can wreck any
  // single round's tail).
  constexpr int kRounds = 6;
  double best_ratio = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<LookupProfile> profiles;
    double p99_min = 0;
    double p99_max = 0;
    for (SweepPointState& point : points) {
      const LookupProfile profile = ProfileLookups(
          *point.container, point.sample, point.rng, /*reps=*/3, &found);
      if (profiles.empty() || profile.p99_ns < p99_min) {
        p99_min = profile.p99_ns;
      }
      if (profiles.empty() || profile.p99_ns > p99_max) {
        p99_max = profile.p99_ns;
      }
      profiles.push_back(profile);
    }
    const double ratio = p99_min > 0 ? p99_max / p99_min : 0.0;
    if (round == 0 || ratio < best_ratio) {
      best_ratio = ratio;
      for (std::size_t i = 0; i < points.size(); ++i) {
        points[i].steady = profiles[i];
      }
    }
  }

  for (SweepPointState& point : points) {
    // Cold random probes over the whole namespace (reported, ungated, a
    // single pass so first-touch misses stay in the numbers): shows the
    // DRAM/TLB capacity effect the steady gate deliberately excludes.
    point.random = ProfileLookups(*point.container, point.random_pool,
                                  point.rng, /*reps=*/1, &found);
    const std::string label = std::to_string(point.count);
    table.AddRow({label, Table::Num(point.register_s, 3),
                  Table::Num(static_cast<double>(point.count) /
                                 point.register_s, 0),
                  Table::Num(point.steady.p50_ns, 0),
                  Table::Num(point.steady.p99_ns, 0),
                  Table::Num(point.random.p99_ns, 0)});
    json_metrics.emplace_back(label + ".files",
                              static_cast<double>(point.count));
    json_metrics.emplace_back(label + ".register_seconds", point.register_s);
    json_metrics.emplace_back(label + ".steady_lookup_p50_ns",
                              point.steady.p50_ns);
    json_metrics.emplace_back(label + ".steady_lookup_p99_ns",
                              point.steady.p99_ns);
    json_metrics.emplace_back(label + ".random_lookup_p99_ns",
                              point.random.p99_ns);
  }

  table.PrintAscii(std::cout);
  const double ratio = best_ratio;
  json_metrics.emplace_back("steady_p99_drift", ratio);
  json_metrics.emplace_back("steady_p99_drift_limit", drift_limit);
  json_metrics.emplace_back("lookups_found", static_cast<double>(found));
  WriteBenchJson(env, "metadata_scale", {}, json_metrics);
  env.Cleanup();

  std::cout << "steady p99 drift over sweep: " << Table::Num(ratio, 2)
            << "x (gate: <= " << drift_limit << "x)\n";
  if (ratio > drift_limit) {
    std::cout << "GATE FAILED: lookup p99 drifts with namespace size\n";
    return 1;
  }
  std::cout << "GATE OK: metadata lookups stay flat 1k -> 1M\n";
  return 0;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
