// Figure 3 (§IV-A): the four setups — vanilla-lustre, vanilla-local,
// vanilla-caching, MONARCH — on the 100 GiB-scale dataset (fits the local
// tier entirely).
//
// Shape targets from the paper:
//   - MONARCH beats vanilla-lustre by ~33% (LeNet) / ~15% (AlexNet)
//     total; ResNet-50 flat;
//   - MONARCH's *first* epoch is faster than vanilla-lustre's and
//     vanilla-caching's (the full-record background fetch serves later
//     chunks of each TFRecord from local storage already in epoch 1);
//   - epochs 2-3 match vanilla-local (everything staged);
//   - metadata initialisation is reported (≈13 s at paper scale).
#include <functional>
#include <iostream>

#include "bench_common.h"

namespace monarch::bench {
namespace {

using dlsim::ExperimentConfig;
using dlsim::Setup;

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("fig3");
  std::cout << "fig3_full_dataset: runs=" << env.runs
            << " scale=" << env.scale << " epochs=" << env.epochs << "\n";

  const std::vector<dlsim::ModelProfile> models{
      dlsim::ModelProfile::LeNet(), dlsim::ModelProfile::AlexNet(),
      dlsim::ModelProfile::ResNet50()};

  struct SetupKind {
    std::string name;
    std::function<Result<Setup>(const ExperimentConfig&, int, const std::string&)>
        make;
  };
  const std::vector<SetupKind> setups{
      {"vanilla-lustre",
       [&](const ExperimentConfig& config, int run, const std::string&) {
         return dlsim::MakeVanillaLustreSetup(
             env.work_dir / ("pfs_r" + std::to_string(run)), config);
       }},
      {"vanilla-local",
       [&](const ExperimentConfig& config, int run, const std::string&) {
         return dlsim::MakeVanillaLocalSetup(
             env.work_dir / ("pfs_r" + std::to_string(run)),
             env.work_dir / ("local_vl" + std::to_string(run)), config);
       }},
      {"vanilla-caching",
       [&](const ExperimentConfig& config, int run, const std::string& tag) {
         return dlsim::MakeVanillaCachingSetup(
             env.work_dir / ("pfs_r" + std::to_string(run)),
             env.work_dir / ("local_vc" + std::to_string(run) + tag),
             config);
       }},
      {"monarch",
       [&](const ExperimentConfig& config, int run, const std::string& tag) {
         return dlsim::MakeMonarchSetup(
             env.work_dir / ("pfs_r" + std::to_string(run)),
             env.work_dir / ("local_mn" + std::to_string(run) + tag),
             config);
       }},
      // Staging-pipeline rider: same MONARCH wiring with the look-ahead
      // cursor on, so BENCH_fig3.json carries demand-only and prefetch
      // first-epoch times side by side (same config, same seeds).
      {"monarch-prefetch",
       [&](const ExperimentConfig& config, int run, const std::string& tag) {
         ExperimentConfig prefetching = config;
         prefetching.prefetch_lookahead = 8;
         return dlsim::MakeMonarchSetup(
             env.work_dir / ("pfs_r" + std::to_string(run)),
             env.work_dir / ("local_mp" + std::to_string(run) + tag),
             prefetching);
       }},
  };

  std::vector<CellResult> cells;
  RunningSummary metadata_init_seconds;
  for (const SetupKind& kind : setups) {
    for (const auto& model : models) {
      CellResult cell;
      cell.setup = kind.name;
      cell.model = model.name;
      for (int run = 0; run < env.runs; ++run) {
        ExperimentConfig config;
        config.dataset = workload::DatasetSpec::ImageNet100GiB(env.scale);
        config.model = model;
        config.epochs = env.epochs;
        config.local_quota_bytes = static_cast<std::uint64_t>(
            115.0 * env.scale * static_cast<double>(kMiB));
        config.run_seed = static_cast<std::uint64_t>(3000 + run);

        auto setup = kind.make(config, run, "_" + model.name);
        if (!setup.ok()) {
          std::cerr << "setup failed: " << setup.status() << "\n";
          return 1;
        }
        // Interval measurement: snapshot-diff around the training run
        // (staging by MONARCH's placement pool lands inside the interval,
        // as it should — it is PFS pressure caused by the job). See
        // io_stats.h for why diffing beats Reset().
        const auto pfs_before =
            setup.value().pfs_engine
                ? setup.value().pfs_engine->Stats().Snapshot()
                : storage::IoStatsSnapshot{};
        const auto local_before =
            setup.value().local_engine
                ? setup.value().local_engine->Stats().Snapshot()
                : storage::IoStatsSnapshot{};
        auto result = setup.value().trainer->Train();
        if (!result.ok()) {
          std::cerr << "training failed: " << result.status() << "\n";
          return 1;
        }
        if (setup.value().monarch) {
          setup.value().monarch->DrainPlacements();
          const auto monarch_stats = setup.value().monarch->Stats();
          metadata_init_seconds.Add(monarch_stats.metadata_init_seconds);
          cell.AccumulateMonarch(monarch_stats);
        }
        const auto pfs =
            (setup.value().pfs_engine
                 ? setup.value().pfs_engine->Stats().Snapshot()
                 : storage::IoStatsSnapshot{}) -
            pfs_before;
        const auto local =
            (setup.value().local_engine
                 ? setup.value().local_engine->Stats().Snapshot()
                 : storage::IoStatsSnapshot{}) -
            local_before;
        cell.Accumulate(result.value(), pfs, local, env.epochs);
      }
      std::cout << "  done: " << kind.name << " / " << model.name << "\n";
      cells.push_back(std::move(cell));
    }
  }

  PrintEpochTable(
      "Figure 3: per-epoch training time, 100 GiB-scale dataset "
      "(seconds, mean±sd)",
      cells, env.epochs);

  PrintBanner(std::cout, "Figure 3 summary: total-time change vs "
                         "vanilla-lustre");
  Table summary({"model", "vanilla-local", "vanilla-caching", "monarch",
                 "monarch-prefetch"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    const double lustre = cells[m].total_seconds.mean();
    summary.AddRow(
        {models[m].name,
         RelativeChange(lustre, cells[models.size() + m].total_seconds.mean()),
         RelativeChange(lustre,
                        cells[2 * models.size() + m].total_seconds.mean()),
         RelativeChange(lustre,
                        cells[3 * models.size() + m].total_seconds.mean()),
         RelativeChange(lustre,
                        cells[4 * models.size() + m].total_seconds.mean())});
  }
  summary.PrintAscii(std::cout);

  // First-epoch comparison: the §IV-A observation that MONARCH's epoch 1
  // undercuts the other PFS-reading setups.
  PrintBanner(std::cout,
              "Figure 3 detail: first-epoch time (seconds, mean)");
  Table first_epoch({"model", "vanilla-lustre", "vanilla-caching", "monarch",
                     "monarch-prefetch"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    first_epoch.AddRow(
        {models[m].name, Table::Num(cells[m].epoch_seconds[0].mean(), 2),
         Table::Num(cells[2 * models.size() + m].epoch_seconds[0].mean(), 2),
         Table::Num(cells[3 * models.size() + m].epoch_seconds[0].mean(), 2),
         Table::Num(cells[4 * models.size() + m].epoch_seconds[0].mean(),
                    2)});
  }
  first_epoch.PrintAscii(std::cout);

  PrintPfsPressureTable("Figure 3: backend I/O operations per run", cells);

  PrintBanner(std::cout, "Figure 3: MONARCH metadata initialisation");
  std::cout << "metadata-init seconds (mean±sd over runs): "
            << MeanSd(metadata_init_seconds, 4) << "\n"
            << "(paper: ~13 s for 100 GiB at full scale; ours walks the\n"
            << " scaled file count through the simulated MDS latency)\n";

  WriteBenchJson(env, "fig3", cells,
                 {{"metadata_init_seconds_mean",
                   metadata_init_seconds.mean()}});
  env.Cleanup();
  return 0;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
