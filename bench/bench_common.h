// Shared harness for the figure/table reproduction benches.
//
// Every figure bench follows the same recipe: build the experiment
// setups, run N repetitions of an E-epoch training simulation, and print
// (a) a human-readable per-epoch table with mean +/- stddev — the shape
// of the paper's bar charts — and (b) a CSV block for re-plotting.
//
// Environment knobs (so CI can run quick sanity passes):
//   MONARCH_BENCH_RUNS   repetitions per cell   (default 2; paper used 7)
//   MONARCH_BENCH_SCALE  dataset scale factor   (default 0.5)
//   MONARCH_BENCH_EPOCHS training epochs        (default 3, as the paper)
//
// Every bench also accepts `--trace-out FILE.json` (or the
// MONARCH_TRACE_OUT environment variable): the whole run is recorded
// with the obs::EventTracer and exported as Chrome trace_event JSON on
// exit — see docs/OBSERVABILITY.md §2.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dlsim/setups.h"
#include "obs/event_tracer.h"
#include "obs/json.h"
#include "util/byte_units.h"
#include "util/histogram.h"
#include "util/table.h"

namespace monarch::bench {

struct BenchEnv {
  int runs = 2;
  double scale = 0.5;
  int epochs = 3;
  std::filesystem::path work_dir;

  static BenchEnv FromEnvironment(const std::string& bench_name);

  /// Remove the working directory tree.
  void Cleanup() const;
};

inline int EnvInt(const char* name, int fallback) {
  if (const char* value = std::getenv(name)) {
    return std::max(1, std::atoi(value));
  }
  return fallback;
}

inline double EnvDouble(const char* name, double fallback) {
  if (const char* value = std::getenv(name)) {
    const double parsed = std::atof(value);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

inline BenchEnv BenchEnv::FromEnvironment(const std::string& bench_name) {
  BenchEnv env;
  env.runs = EnvInt("MONARCH_BENCH_RUNS", 2);
  env.scale = EnvDouble("MONARCH_BENCH_SCALE", 0.5);
  env.epochs = EnvInt("MONARCH_BENCH_EPOCHS", 3);
  env.work_dir = std::filesystem::temp_directory_path() /
                 ("monarch_bench_" + bench_name + "_" +
                  std::to_string(::getpid()));
  std::filesystem::create_directories(env.work_dir);
  return env;
}

inline void BenchEnv::Cleanup() const {
  std::error_code ec;
  std::filesystem::remove_all(work_dir, ec);
}

/// Per-epoch summaries of repeated runs of one (setup, model) cell.
struct CellResult {
  std::string setup;
  std::string model;
  std::vector<RunningSummary> epoch_seconds;  ///< one per epoch
  RunningSummary total_seconds;
  RunningSummary cpu_utilisation;   ///< averaged over epochs, per run
  RunningSummary gpu_utilisation;
  RunningSummary peak_memory_mib;
  // PFS pressure, summed over the whole run.
  RunningSummary pfs_read_ops;
  RunningSummary pfs_total_ops;
  RunningSummary local_read_ops;
  // MONARCH-only staging telemetry (empty for vanilla setups).
  RunningSummary prefetch_scheduled;
  RunningSummary prefetch_completed;
  RunningSummary prefetch_hits;
  RunningSummary donated_mib;

  void Accumulate(const dlsim::TrainingResult& result,
                  const storage::IoStatsSnapshot& pfs,
                  const storage::IoStatsSnapshot& local, int epochs) {
    if (epoch_seconds.empty()) {
      epoch_seconds.resize(static_cast<std::size_t>(epochs));
    }
    double cpu = 0;
    double gpu = 0;
    double peak_mem = 0;
    for (std::size_t e = 0; e < result.epochs.size(); ++e) {
      epoch_seconds[e].Add(result.epochs[e].wall_seconds);
      cpu += result.epochs[e].cpu_utilisation;
      gpu += result.epochs[e].gpu_utilisation;
      peak_mem = std::max(
          peak_mem,
          static_cast<double>(result.epochs[e].peak_memory_bytes) /
              static_cast<double>(kMiB));
    }
    const auto n = static_cast<double>(result.epochs.size());
    total_seconds.Add(result.total_seconds);
    cpu_utilisation.Add(cpu / n);
    gpu_utilisation.Add(gpu / n);
    peak_memory_mib.Add(peak_mem);
    pfs_read_ops.Add(static_cast<double>(pfs.read_ops));
    pfs_total_ops.Add(static_cast<double>(pfs.total_ops()));
    local_read_ops.Add(static_cast<double>(local.read_ops));
  }

  /// MONARCH arms call this once per run so BENCH_*.json can report
  /// prefetch effectiveness next to the wall times.
  void AccumulateMonarch(const core::MonarchStats& stats) {
    prefetch_scheduled.Add(
        static_cast<double>(stats.placement.prefetch_scheduled));
    prefetch_completed.Add(
        static_cast<double>(stats.placement.prefetch_completed));
    prefetch_hits.Add(static_cast<double>(stats.prefetch_hits));
    donated_mib.Add(static_cast<double>(stats.placement.donated_bytes) /
                    static_cast<double>(kMiB));
  }
};

/// One measured point of a reader-threads sweep
/// (bench/micro_read_hotpath.cc): throughput over the whole pool plus
/// the per-op latency distribution.
struct SweepPoint {
  int threads = 0;
  std::uint64_t ops = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  LatencyHistogram::Snapshot latency;
};

/// Run one sweep point: `threads` workers, each executing
/// `ops_per_thread` calls of `per_op(thread_index, op_index)` — per_op
/// must return only once its read has completed. All workers start on a
/// shared go-signal so the wall clock covers pure steady-state work, and
/// every op's latency lands in one shared (wait-free) histogram.
template <typename PerOp>
SweepPoint RunThreadSweepPoint(int threads, int ops_per_thread,
                               PerOp&& per_op) {
  LatencyHistogram histogram;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_relaxed);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < ops_per_thread; ++i) {
        const Stopwatch op_timer;
        per_op(t, i);
        histogram.Record(op_timer.Elapsed());
      }
    });
  }
  while (ready.load(std::memory_order_relaxed) < threads) {
    std::this_thread::yield();
  }
  const Stopwatch wall;
  go.store(true, std::memory_order_release);
  for (std::thread& worker : pool) worker.join();

  SweepPoint point;
  point.threads = threads;
  point.ops = static_cast<std::uint64_t>(threads) *
              static_cast<std::uint64_t>(ops_per_thread);
  point.seconds = wall.ElapsedSeconds();
  point.ops_per_sec =
      point.seconds > 0 ? static_cast<double>(point.ops) / point.seconds : 0;
  point.latency = histogram.TakeSnapshot();
  return point;
}

/// "mean±sd" cell text.
inline std::string MeanSd(const RunningSummary& summary, int precision = 2) {
  return Table::Num(summary.mean(), precision) + "±" +
         Table::Num(summary.stddev(), precision);
}

/// Print the per-epoch training-time table (the bar heights of the
/// paper's Figures 1/3/4) followed by its CSV form.
inline void PrintEpochTable(const std::string& title,
                            const std::vector<CellResult>& cells,
                            int epochs) {
  PrintBanner(std::cout, title);
  std::vector<std::string> headers{"setup", "model"};
  for (int e = 1; e <= epochs; ++e) {
    headers.push_back("epoch" + std::to_string(e) + "_s");
  }
  headers.push_back("total_s");
  Table table(headers);
  for (const CellResult& cell : cells) {
    std::vector<std::string> row{cell.setup, cell.model};
    for (const auto& epoch : cell.epoch_seconds) {
      row.push_back(MeanSd(epoch));
    }
    row.push_back(MeanSd(cell.total_seconds));
    table.AddRow(std::move(row));
  }
  table.PrintAscii(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
}

/// Print the PFS-pressure table (reads and total ops per setup).
inline void PrintPfsPressureTable(const std::string& title,
                                  const std::vector<CellResult>& cells) {
  PrintBanner(std::cout, title);
  Table table({"setup", "model", "pfs_reads", "pfs_total_ops",
               "local_reads"});
  for (const CellResult& cell : cells) {
    table.AddRow({cell.setup, cell.model, MeanSd(cell.pfs_read_ops, 0),
                  MeanSd(cell.pfs_total_ops, 0),
                  MeanSd(cell.local_read_ops, 0)});
  }
  table.PrintAscii(std::cout);
}

/// One JSON number (JSON has no NaN/Inf — render those as null).
inline std::string JsonNum(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream out;
  out.precision(10);
  out << value;
  return out.str();
}

/// Where BENCH_<name>.json lands: $MONARCH_BENCH_JSON_DIR, else the
/// current directory.
inline std::filesystem::path BenchJsonPath(const std::string& bench_name) {
  std::filesystem::path dir = ".";
  if (const char* env = std::getenv("MONARCH_BENCH_JSON_DIR")) dir = env;
  return dir / ("BENCH_" + bench_name + ".json");
}

/// Machine-readable companion to the ASCII tables: every bench writes
/// BENCH_<name>.json with its per-cell epoch times, per-tier read shares,
/// and prefetch effectiveness, plus free-form scalar `metrics` for
/// bench-specific numbers. Scripts (scripts/bench_smoke.sh) and CI diff
/// these instead of scraping stdout.
inline void WriteBenchJson(
    const BenchEnv& env, const std::string& bench_name,
    const std::vector<CellResult>& cells,
    const std::vector<std::pair<std::string, double>>& metrics = {}) {
  std::ostringstream json;
  json << "{\n  \"bench\": " << obs::JsonQuote(bench_name)
       << ",\n  \"runs\": " << env.runs << ",\n  \"scale\": "
       << JsonNum(env.scale) << ",\n  \"epochs\": " << env.epochs
       << ",\n  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    json << (i == 0 ? "\n" : ",\n") << "    {\"setup\": "
         << obs::JsonQuote(cell.setup) << ", \"model\": "
         << obs::JsonQuote(cell.model) << ",\n     \"epoch_seconds_mean\": [";
    for (std::size_t e = 0; e < cell.epoch_seconds.size(); ++e) {
      json << (e == 0 ? "" : ", ") << JsonNum(cell.epoch_seconds[e].mean());
    }
    json << "], \"epoch_seconds_sd\": [";
    for (std::size_t e = 0; e < cell.epoch_seconds.size(); ++e) {
      json << (e == 0 ? "" : ", ") << JsonNum(cell.epoch_seconds[e].stddev());
    }
    json << "],\n     \"total_seconds_mean\": "
         << JsonNum(cell.total_seconds.mean()) << ", \"total_seconds_sd\": "
         << JsonNum(cell.total_seconds.stddev());
    // Per-tier read share: what fraction of this run's reads the local
    // tier absorbed (0 when the setup never touches a local tier).
    const double pfs_reads = cell.pfs_read_ops.mean();
    const double local_reads = cell.local_read_ops.mean();
    const double total_reads = pfs_reads + local_reads;
    json << ",\n     \"pfs_read_ops_mean\": " << JsonNum(pfs_reads)
         << ", \"local_read_ops_mean\": " << JsonNum(local_reads)
         << ", \"local_read_share\": "
         << JsonNum(total_reads > 0 ? local_reads / total_reads : 0.0);
    if (cell.prefetch_scheduled.count() > 0) {
      const double scheduled = cell.prefetch_scheduled.mean();
      const double hits = cell.prefetch_hits.mean();
      json << ",\n     \"prefetch_scheduled_mean\": " << JsonNum(scheduled)
           << ", \"prefetch_completed_mean\": "
           << JsonNum(cell.prefetch_completed.mean())
           << ", \"prefetch_hits_mean\": " << JsonNum(hits)
           << ", \"prefetch_hit_rate\": "
           << JsonNum(scheduled > 0 ? hits / scheduled : 0.0)
           << ", \"donated_mib_mean\": " << JsonNum(cell.donated_mib.mean());
    }
    json << "}";
  }
  json << (cells.empty() ? "]" : "\n  ]") << ",\n  \"metrics\": {";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    json << (i == 0 ? "" : ", ") << obs::JsonQuote(metrics[i].first) << ": "
         << JsonNum(metrics[i].second);
  }
  json << "}\n}\n";

  const std::filesystem::path path = BenchJsonPath(bench_name);
  std::ofstream out(path);
  out << json.str();
  if (!out) {
    std::cerr << "bench-json: failed to write " << path << "\n";
    return;
  }
  std::cout << "bench-json: wrote " << path.string() << "\n";
}

/// Relative change text, e.g. "-33.1%" of b versus a.
inline std::string RelativeChange(double baseline, double measured) {
  if (baseline <= 0) return "n/a";
  return Table::Pct((measured - baseline) / baseline);
}

/// RAII wrapper for the benches' `--trace-out FILE.json` flag (the
/// MONARCH_TRACE_OUT environment variable works too, flag wins): enables
/// the global EventTracer for the bench's lifetime and exports Chrome
/// trace JSON at scope exit. Inactive (and free) when neither is given.
class TraceOutGuard {
 public:
  TraceOutGuard(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--trace-out") == 0) {
        path_ = argv[i + 1];
        break;
      }
    }
    if (path_.empty()) {
      if (const char* env = std::getenv("MONARCH_TRACE_OUT")) path_ = env;
    }
    if (!path_.empty()) obs::EventTracer::Global().Enable();
  }

  ~TraceOutGuard() {
    if (path_.empty()) return;
    obs::EventTracer& tracer = obs::EventTracer::Global();
    tracer.Disable();
    if (const auto status = tracer.ExportChromeJsonToFile(path_);
        !status.ok()) {
      std::cerr << "trace-out: " << status << "\n";
      return;
    }
    std::cout << "trace-out: wrote " << tracer.recorded_events()
              << " events (" << tracer.dropped_events() << " dropped) to "
              << path_ << "\n";
  }

  TraceOutGuard(const TraceOutGuard&) = delete;
  TraceOutGuard& operator=(const TraceOutGuard&) = delete;

 private:
  std::string path_;
};

}  // namespace monarch::bench
