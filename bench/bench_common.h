// Shared harness for the figure/table reproduction benches.
//
// Every figure bench follows the same recipe: build the experiment
// setups, run N repetitions of an E-epoch training simulation, and print
// (a) a human-readable per-epoch table with mean +/- stddev — the shape
// of the paper's bar charts — and (b) a CSV block for re-plotting.
//
// Environment knobs (so CI can run quick sanity passes):
//   MONARCH_BENCH_RUNS   repetitions per cell   (default 2; paper used 7)
//   MONARCH_BENCH_SCALE  dataset scale factor   (default 0.5)
//   MONARCH_BENCH_EPOCHS training epochs        (default 3, as the paper)
//
// Every bench also accepts `--trace-out FILE.json` (or the
// MONARCH_TRACE_OUT environment variable): the whole run is recorded
// with the obs::EventTracer and exported as Chrome trace_event JSON on
// exit — see docs/OBSERVABILITY.md §2.
#pragma once

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "dlsim/setups.h"
#include "obs/event_tracer.h"
#include "util/byte_units.h"
#include "util/histogram.h"
#include "util/table.h"

namespace monarch::bench {

struct BenchEnv {
  int runs = 2;
  double scale = 0.5;
  int epochs = 3;
  std::filesystem::path work_dir;

  static BenchEnv FromEnvironment(const std::string& bench_name);

  /// Remove the working directory tree.
  void Cleanup() const;
};

inline int EnvInt(const char* name, int fallback) {
  if (const char* value = std::getenv(name)) {
    return std::max(1, std::atoi(value));
  }
  return fallback;
}

inline double EnvDouble(const char* name, double fallback) {
  if (const char* value = std::getenv(name)) {
    const double parsed = std::atof(value);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

inline BenchEnv BenchEnv::FromEnvironment(const std::string& bench_name) {
  BenchEnv env;
  env.runs = EnvInt("MONARCH_BENCH_RUNS", 2);
  env.scale = EnvDouble("MONARCH_BENCH_SCALE", 0.5);
  env.epochs = EnvInt("MONARCH_BENCH_EPOCHS", 3);
  env.work_dir = std::filesystem::temp_directory_path() /
                 ("monarch_bench_" + bench_name + "_" +
                  std::to_string(::getpid()));
  std::filesystem::create_directories(env.work_dir);
  return env;
}

inline void BenchEnv::Cleanup() const {
  std::error_code ec;
  std::filesystem::remove_all(work_dir, ec);
}

/// Per-epoch summaries of repeated runs of one (setup, model) cell.
struct CellResult {
  std::string setup;
  std::string model;
  std::vector<RunningSummary> epoch_seconds;  ///< one per epoch
  RunningSummary total_seconds;
  RunningSummary cpu_utilisation;   ///< averaged over epochs, per run
  RunningSummary gpu_utilisation;
  RunningSummary peak_memory_mib;
  // PFS pressure, summed over the whole run.
  RunningSummary pfs_read_ops;
  RunningSummary pfs_total_ops;
  RunningSummary local_read_ops;

  void Accumulate(const dlsim::TrainingResult& result,
                  const storage::IoStatsSnapshot& pfs,
                  const storage::IoStatsSnapshot& local, int epochs) {
    if (epoch_seconds.empty()) {
      epoch_seconds.resize(static_cast<std::size_t>(epochs));
    }
    double cpu = 0;
    double gpu = 0;
    double peak_mem = 0;
    for (std::size_t e = 0; e < result.epochs.size(); ++e) {
      epoch_seconds[e].Add(result.epochs[e].wall_seconds);
      cpu += result.epochs[e].cpu_utilisation;
      gpu += result.epochs[e].gpu_utilisation;
      peak_mem = std::max(
          peak_mem,
          static_cast<double>(result.epochs[e].peak_memory_bytes) /
              static_cast<double>(kMiB));
    }
    const auto n = static_cast<double>(result.epochs.size());
    total_seconds.Add(result.total_seconds);
    cpu_utilisation.Add(cpu / n);
    gpu_utilisation.Add(gpu / n);
    peak_memory_mib.Add(peak_mem);
    pfs_read_ops.Add(static_cast<double>(pfs.read_ops));
    pfs_total_ops.Add(static_cast<double>(pfs.total_ops()));
    local_read_ops.Add(static_cast<double>(local.read_ops));
  }
};

/// "mean±sd" cell text.
inline std::string MeanSd(const RunningSummary& summary, int precision = 2) {
  return Table::Num(summary.mean(), precision) + "±" +
         Table::Num(summary.stddev(), precision);
}

/// Print the per-epoch training-time table (the bar heights of the
/// paper's Figures 1/3/4) followed by its CSV form.
inline void PrintEpochTable(const std::string& title,
                            const std::vector<CellResult>& cells,
                            int epochs) {
  PrintBanner(std::cout, title);
  std::vector<std::string> headers{"setup", "model"};
  for (int e = 1; e <= epochs; ++e) {
    headers.push_back("epoch" + std::to_string(e) + "_s");
  }
  headers.push_back("total_s");
  Table table(headers);
  for (const CellResult& cell : cells) {
    std::vector<std::string> row{cell.setup, cell.model};
    for (const auto& epoch : cell.epoch_seconds) {
      row.push_back(MeanSd(epoch));
    }
    row.push_back(MeanSd(cell.total_seconds));
    table.AddRow(std::move(row));
  }
  table.PrintAscii(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
}

/// Print the PFS-pressure table (reads and total ops per setup).
inline void PrintPfsPressureTable(const std::string& title,
                                  const std::vector<CellResult>& cells) {
  PrintBanner(std::cout, title);
  Table table({"setup", "model", "pfs_reads", "pfs_total_ops",
               "local_reads"});
  for (const CellResult& cell : cells) {
    table.AddRow({cell.setup, cell.model, MeanSd(cell.pfs_read_ops, 0),
                  MeanSd(cell.pfs_total_ops, 0),
                  MeanSd(cell.local_read_ops, 0)});
  }
  table.PrintAscii(std::cout);
}

/// Relative change text, e.g. "-33.1%" of b versus a.
inline std::string RelativeChange(double baseline, double measured) {
  if (baseline <= 0) return "n/a";
  return Table::Pct((measured - baseline) / baseline);
}

/// RAII wrapper for the benches' `--trace-out FILE.json` flag (the
/// MONARCH_TRACE_OUT environment variable works too, flag wins): enables
/// the global EventTracer for the bench's lifetime and exports Chrome
/// trace JSON at scope exit. Inactive (and free) when neither is given.
class TraceOutGuard {
 public:
  TraceOutGuard(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--trace-out") == 0) {
        path_ = argv[i + 1];
        break;
      }
    }
    if (path_.empty()) {
      if (const char* env = std::getenv("MONARCH_TRACE_OUT")) path_ = env;
    }
    if (!path_.empty()) obs::EventTracer::Global().Enable();
  }

  ~TraceOutGuard() {
    if (path_.empty()) return;
    obs::EventTracer& tracer = obs::EventTracer::Global();
    tracer.Disable();
    if (const auto status = tracer.ExportChromeJsonToFile(path_);
        !status.ok()) {
      std::cerr << "trace-out: " << status << "\n";
      return;
    }
    std::cout << "trace-out: wrote " << tracer.recorded_events()
              << " events (" << tracer.dropped_events() << " dropped) to "
              << path_ << "\n";
  }

  TraceOutGuard(const TraceOutGuard&) = delete;
  TraceOutGuard& operator=(const TraceOutGuard&) = delete;

 private:
  std::string path_;
};

}  // namespace monarch::bench
