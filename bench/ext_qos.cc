// Extension experiment (ISSUE 10): multi-tenant QoS — per-class latency
// and throughput isolation as the tenant count ramps, plus scan
// resistance of the placement tiers.
//
// Phase A (bandwidth broker): one interactive tenant (weight 8, small
// paced reads) shares a metered pipe with N full-scan tenants (weight 2
// each, back-to-back bulk reads), N ramping 1 -> 32. Every read goes
// through a StorageDriver whose bytes are charged to the calling
// thread's ambient tenant. Gates:
//   - interactive p99 at N=32 stays within 2x of its solo (N=0) figure
//     (with a small absolute floor so scheduler jitter on a ~50us
//     memory read can't fail the gate spuriously);
//   - aggregate scan throughput with the interactive tenant running
//     stays within 20% of the no-interactive baseline at N=32 (the
//     broker reserves the interactive share, nothing more).
//
// Phase B (scan resistance): a trainer stages its working set into a
// Monarch cache tier, then re-reads it while a low-retention full-scan
// tenant sweeps a 4x larger dataset through the same hierarchy (QoS
// enabled, scan staging cap). Gates:
//   - zero cross-class evictions (the metric is the reconciliation);
//   - a post-scan re-read of the whole trainer working set touches the
//     PFS zero times — the scan never displaced it.
//
// Exit 0 iff every gate holds; scripts/bench_smoke.sh runs this binary
// exit-code-gated.
#include <atomic>
#include <cstddef>
#include <iostream>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/monarch.h"
#include "core/storage_driver.h"
#include "qos/bandwidth_broker.h"
#include "qos/tenant.h"
#include "storage/memory_engine.h"
#include "util/clock.h"
#include "util/histogram.h"

namespace monarch::bench {
namespace {

constexpr double kPipeBytesPerSec = 64.0 * static_cast<double>(kMiB);
constexpr std::size_t kInteractiveReadBytes = 16 * 1024;
constexpr std::size_t kScanReadBytes = 64 * 1024;
constexpr double kPointSeconds = 0.6;
/// Interactive pacing: ~4 MiB/s offered load — inside the interactive
/// share even at N=32 (8/72 of the pipe ~ 7.1 MiB/s), so any throttle
/// wait it does see is an isolation failure, not an overload artefact.
const Duration kInteractivePace = Millis(4);
/// Absolute p99 floor for the 2x gate: a throttled read waits tens of
/// milliseconds, an unthrottled memory read plus scheduler jitter stays
/// well under this.
constexpr double kP99FloorUs = 2000.0;

qos::TenantContext MakeTenant(int id, std::string name, qos::IoClass cls,
                              double weight, bool low_retention = false) {
  qos::TenantContext tenant;
  tenant.tenant_id = id;
  tenant.name = std::move(name);
  tenant.io_class = cls;
  tenant.weight = weight;
  tenant.low_retention = low_retention;
  return tenant;
}

struct RampPoint {
  int scan_tenants = 0;
  bool interactive = true;
  double interactive_p99_us = 0;
  double interactive_mean_us = 0;
  double scan_mibps = 0;           ///< aggregate over all scan tenants
  std::uint64_t scan_throttle_waits = 0;
  std::uint64_t interactive_throttle_waits = 0;
};

/// One ramp point: N scan tenants (and optionally the interactive one)
/// hammer a fresh broker + driver for kPointSeconds.
RampPoint RunRampPoint(int scan_tenants, bool interactive) {
  qos::BandwidthBroker::Options broker_options;
  broker_options.total_rate_bps = kPipeBytesPerSec;
  broker_options.work_conserving = true;
  auto broker = std::make_shared<qos::BandwidthBroker>(broker_options);

  auto engine = std::make_shared<storage::MemoryEngine>("qos-shared");
  const std::vector<std::byte> payload(1 << 20);
  if (!engine->Write("qos/data", payload).ok()) std::abort();

  const auto interactive_tenant =
      MakeTenant(0, "interactive", qos::IoClass::kInteractive, 8.0);
  broker->RegisterTenant(interactive_tenant);
  std::vector<qos::TenantContext> scanners;
  for (int i = 0; i < scan_tenants; ++i) {
    scanners.push_back(MakeTenant(1 + i, "scan" + std::to_string(i),
                                  qos::IoClass::kScan, 2.0,
                                  /*low_retention=*/true));
    broker->RegisterTenant(scanners.back());
  }

  core::StorageDriver driver("qos-tier", engine, /*quota_bytes=*/0,
                             /*read_only=*/true);
  driver.SetQosBroker(broker, interactive_tenant);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scan_bytes{0};
  LatencyHistogram interactive_latency;

  std::vector<std::thread> pool;
  for (const qos::TenantContext& scanner : scanners) {
    pool.emplace_back([&, scanner] {
      qos::ScopedTenant scope(scanner);
      std::vector<std::byte> buffer(kScanReadBytes);
      std::uint64_t offset = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto n = driver.Read("qos/data", offset, buffer);
        if (!n.ok()) std::abort();
        scan_bytes.fetch_add(*n, std::memory_order_relaxed);
        offset = (offset + kScanReadBytes) % (payload.size() / 2);
      }
    });
  }
  if (interactive) {
    pool.emplace_back([&] {
      qos::ScopedTenant scope(interactive_tenant);
      std::vector<std::byte> buffer(kInteractiveReadBytes);
      while (!stop.load(std::memory_order_relaxed)) {
        const Stopwatch op;
        if (!driver.Read("qos/data", 0, buffer).ok()) std::abort();
        interactive_latency.Record(op.Elapsed());
        PreciseSleep(kInteractivePace);
      }
    });
  }

  const Stopwatch wall;
  PreciseSleep(FromSeconds(kPointSeconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& worker : pool) worker.join();
  const double elapsed = wall.ElapsedSeconds();

  RampPoint point;
  point.scan_tenants = scan_tenants;
  point.interactive = interactive;
  const auto latency = interactive_latency.TakeSnapshot();
  point.interactive_p99_us = static_cast<double>(latency.p99_us);
  point.interactive_mean_us = latency.mean_us;
  point.scan_mibps = static_cast<double>(scan_bytes.load()) /
                     static_cast<double>(kMiB) / elapsed;
  for (const auto& usage : broker->Usage()) {
    if (usage.io_class == qos::IoClass::kScan) {
      point.scan_throttle_waits += usage.throttle_waits;
    } else if (usage.tenant_id == 0) {
      point.interactive_throttle_waits = usage.throttle_waits;
    }
  }
  return point;
}

struct ScanResistanceResult {
  std::uint64_t cross_class_evictions = 0;
  std::uint64_t scan_stage_refusals = 0;
  std::uint64_t trainer_reread_pfs_ops = 0;  ///< must be 0
  std::uint64_t trainer_files = 0;
  std::uint64_t scan_files = 0;
  bool ok = false;
};

/// Phase B: trainer working set vs concurrent low-retention full scan
/// through one QoS-enabled Monarch hierarchy.
ScanResistanceResult RunScanResistance() {
  ScanResistanceResult out;
  constexpr std::size_t kFileBytes = 128 * 1024;
  constexpr int kTrainerFiles = 16;
  constexpr int kScanFiles = 64;
  out.trainer_files = kTrainerFiles;
  out.scan_files = kScanFiles;

  auto pfs = std::make_shared<storage::MemoryEngine>("qos-pfs");
  const std::vector<std::byte> payload(kFileBytes);
  std::vector<std::string> trainer_files;
  std::vector<std::string> scan_files;
  for (int i = 0; i < kTrainerFiles; ++i) {
    trainer_files.push_back("data/train-" + std::to_string(i));
    if (!pfs->Write(trainer_files.back(), payload).ok()) std::abort();
  }
  for (int i = 0; i < kScanFiles; ++i) {
    scan_files.push_back("data/scan-" + std::to_string(i));
    if (!pfs->Write(scan_files.back(), payload).ok()) std::abort();
  }

  const std::uint64_t trainer_bytes =
      static_cast<std::uint64_t>(kTrainerFiles) * kFileBytes;
  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{
      "qos-ram", std::make_shared<storage::MemoryEngine>("qos-ram"),
      trainer_bytes + trainer_bytes / 2});  // room for the set + a bit
  config.pfs = core::TierSpec{"qos-pfs", pfs, 0};
  config.dataset_dir = "data";
  config.placement.enable_eviction = true;
  config.placement.qos.enabled = true;
  config.placement.qos.scan_stage_cap_bytes = trainer_bytes / 2;
  auto monarch = core::Monarch::Create(std::move(config));
  if (!monarch.ok()) {
    std::cerr << "ext_qos: monarch create failed: " << monarch.status()
              << "\n";
    return out;
  }

  const auto trainer =
      MakeTenant(1, "trainer", qos::IoClass::kTraining, 4.0);
  const auto scanner = MakeTenant(2, "scanner", qos::IoClass::kScan, 2.0,
                                  /*low_retention=*/true);
  const auto read_all = [&](const std::vector<std::string>& files,
                            const qos::TenantContext& tenant) {
    qos::ScopedTenant scope(tenant);
    std::vector<std::byte> buffer(64 * 1024);
    for (const std::string& file : files) {
      std::uint64_t offset = 0;
      while (offset < kFileBytes) {
        const auto n = (*monarch)->Read(file, offset, buffer);
        if (!n.ok() || *n == 0) std::abort();
        offset += *n;
      }
    }
  };

  // Epoch 1: the trainer stages its working set.
  read_all(trainer_files, trainer);
  (*monarch)->DrainPlacements();

  // Concurrent phase: the trainer re-reads while the scan sweeps a 4x
  // larger dataset through the same tiers.
  std::thread scan_thread([&] { read_all(scan_files, scanner); });
  read_all(trainer_files, trainer);
  scan_thread.join();
  (*monarch)->DrainPlacements();

  // Reconciliation re-read: with the scan finished, every trainer byte
  // must still come from the cache tier.
  const std::uint64_t pfs_reads_before = pfs->Stats().Snapshot().read_ops;
  read_all(trainer_files, trainer);
  out.trainer_reread_pfs_ops =
      pfs->Stats().Snapshot().read_ops - pfs_reads_before;

  const core::MonarchStats stats = (*monarch)->Stats();
  out.cross_class_evictions = stats.placement.cross_class_evictions;
  out.scan_stage_refusals = stats.placement.scan_stage_refusals;
  out.ok = true;
  return out;
}

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("ext_qos");
  std::vector<std::pair<std::string, double>> json_metrics;

  PrintBanner(std::cout,
              "Multi-tenant QoS: latency/throughput isolation ramp");
  std::cout << "pipe=" << FormatByteSize(
                   static_cast<std::uint64_t>(kPipeBytesPerSec))
            << "/s interactive=w8@" << kInteractiveReadBytes / 1024
            << "KiB scan=w2@" << kScanReadBytes / 1024 << "KiB point="
            << kPointSeconds << "s\n";

  Table table({"scan_tenants", "interactive_p99_us", "interactive_mean_us",
               "int_waits", "scan_MiB_s", "scan_waits"});
  const RampPoint solo = RunRampPoint(0, /*interactive=*/true);
  std::vector<RampPoint> ramp;
  for (const int n : {1, 2, 4, 8, 16, 32}) {
    ramp.push_back(RunRampPoint(n, /*interactive=*/true));
  }
  const RampPoint scan_baseline = RunRampPoint(32, /*interactive=*/false);

  const auto add_row = [&](const RampPoint& point, const char* label) {
    table.AddRow({label != nullptr ? label
                                   : std::to_string(point.scan_tenants),
                  Table::Num(point.interactive_p99_us, 0),
                  Table::Num(point.interactive_mean_us, 0),
                  std::to_string(point.interactive_throttle_waits),
                  Table::Num(point.scan_mibps, 1),
                  std::to_string(point.scan_throttle_waits)});
  };
  add_row(solo, "0 (solo)");
  for (const RampPoint& point : ramp) add_row(point, nullptr);
  add_row(scan_baseline, "32 (no-int)");
  table.PrintAscii(std::cout);

  json_metrics.emplace_back("interactive_p99_us.n0", solo.interactive_p99_us);
  for (const RampPoint& point : ramp) {
    const std::string key = "n" + std::to_string(point.scan_tenants);
    json_metrics.emplace_back("interactive_p99_us." + key,
                              point.interactive_p99_us);
    json_metrics.emplace_back("scan_aggregate_mibps." + key,
                              point.scan_mibps);
  }
  json_metrics.emplace_back("scan_aggregate_mibps.n32_baseline",
                            scan_baseline.scan_mibps);

  // Gate A1: interactive p99 within 2x of solo (absolute floor for
  // scheduler jitter on the ~50us unthrottled baseline).
  const RampPoint& worst = ramp.back();
  const double p99_budget =
      std::max(2.0 * solo.interactive_p99_us, kP99FloorUs);
  const bool p99_ok = worst.interactive_p99_us <= p99_budget;
  json_metrics.emplace_back("gate.p99_budget_us", p99_budget);
  std::cout << "\ngate A1: interactive p99 @N=32 "
            << Table::Num(worst.interactive_p99_us, 0) << "us vs budget "
            << Table::Num(p99_budget, 0) << "us (solo "
            << Table::Num(solo.interactive_p99_us, 0) << "us) -> "
            << (p99_ok ? "PASS" : "FAIL") << "\n";

  // Gate A2: aggregate scan throughput within 20% of the
  // no-interactive baseline at N=32.
  const double scan_ratio =
      scan_baseline.scan_mibps > 0
          ? worst.scan_mibps / scan_baseline.scan_mibps
          : 0.0;
  const bool scan_ok = scan_ratio >= 0.8;
  json_metrics.emplace_back("gate.scan_throughput_ratio", scan_ratio);
  std::cout << "gate A2: scan aggregate " << Table::Num(worst.scan_mibps, 1)
            << " MiB/s vs baseline "
            << Table::Num(scan_baseline.scan_mibps, 1) << " MiB/s (ratio "
            << Table::Num(scan_ratio, 3) << ", need >= 0.8) -> "
            << (scan_ok ? "PASS" : "FAIL") << "\n";

  PrintBanner(std::cout, "Scan resistance: trainer working set vs full scan");
  const ScanResistanceResult resistance = RunScanResistance();
  std::cout << "trainer_files=" << resistance.trainer_files
            << " scan_files=" << resistance.scan_files
            << " cross_class_evictions=" << resistance.cross_class_evictions
            << " scan_stage_refusals=" << resistance.scan_stage_refusals
            << " trainer_reread_pfs_ops=" << resistance.trainer_reread_pfs_ops
            << "\n";
  const bool resist_ok = resistance.ok &&
                         resistance.cross_class_evictions == 0 &&
                         resistance.trainer_reread_pfs_ops == 0;
  json_metrics.emplace_back(
      "gate.cross_class_evictions",
      static_cast<double>(resistance.cross_class_evictions));
  json_metrics.emplace_back(
      "gate.trainer_reread_pfs_ops",
      static_cast<double>(resistance.trainer_reread_pfs_ops));
  json_metrics.emplace_back(
      "scan_stage_refusals",
      static_cast<double>(resistance.scan_stage_refusals));
  std::cout << "gate B: cross_class_evictions == 0 and trainer re-read off "
               "the PFS -> "
            << (resist_ok ? "PASS" : "FAIL") << "\n";

  WriteBenchJson(env, "ext_qos", {}, json_metrics);
  env.Cleanup();

  if (p99_ok && scan_ok && resist_ok) {
    std::cout << "\nISOLATED: all QoS gates hold\n";
    return 0;
  }
  std::cout << "\nFAILED: a QoS gate did not hold\n";
  return 1;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
