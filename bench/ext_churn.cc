// Chaos experiment (ISSUE 7): does the peer cache survive node churn?
//
// Four jobs share one PFS and one peer directory. Mid-run a node is
// killed (its reads pause, its advertisements are retracted, its peers'
// in-flight RPCs time out and fail over) and later rejoins (surviving
// copies re-advertised, lost replication repaired through the bounded-
// rate re-staging pumps). Three arms:
//
//   baseline   replication=2, no churn — the digest/traffic reference
//   churn-r2   replication=2 + kill/revive — failover keeps peer reads
//              flowing, so the PFS fallback stays bounded
//   churn-r1   replication=1 + the same schedule — no second holder to
//              fail over to, so the same outage is absorbed by the PFS
//
// Acceptance (committed to bench-results/BENCH_ext_churn.json): per-epoch
// sample digests are byte-identical across arms (churn pauses a trainer,
// it never changes what it consumes), replication health is restored by
// the end of the churn-r2 run, and the churn-r1 arm pays more PFS bytes
// than churn-r2 — the gap is what replica failover saves.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "dlsim/cluster.h"

namespace monarch::bench {
namespace {

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("churn");
  env.runs = EnvInt("MONARCH_BENCH_RUNS", 1);
  const double scale = EnvDouble("MONARCH_BENCH_SCALE", 0.5) * 0.5;
  std::cout << "ext_churn: scale=" << scale << " epochs=" << env.epochs
            << "\n";

  PrintBanner(std::cout, "Node churn under cooperative peer caching (LeNet)");
  Table table({"setup", "mean_epoch_s", "pfs_GiB", "peer_GiB", "failovers",
               "rpc_timeouts", "restaged", "below_target", "digests"});
  std::vector<std::pair<std::string, double>> json_metrics;

  constexpr int kJobs = 4;
  const workload::DatasetSpec dataset =
      workload::DatasetSpec::ImageNet100GiB(scale);
  const std::uint64_t opens_per_epoch =
      dataset.num_files * static_cast<std::uint64_t>(kJobs);

  // Kill node 1 just into epoch 2 and revive it an epoch of cluster
  // progress later: the outage spans an epoch boundary, so both demand
  // reads and the next epoch's staging decisions see the shrunken ring,
  // and it is long enough that the 1-replica arm's per-read PFS fallback
  // clearly outweighs the 2-replica arm's one-shot repair staging.
  std::vector<dlsim::ChurnEvent> schedule;
  schedule.push_back({dlsim::ChurnKind::kKill, 1,
                      opens_per_epoch * 11 / 10});
  schedule.push_back({dlsim::ChurnKind::kRevive, 1,
                      opens_per_epoch * 22 / 10});

  struct Arm {
    const char* key;
    int replication;
    bool churn;
    const char* baseline_key;  ///< churn arms diff PFS bytes against this
  };
  constexpr Arm kArms[] = {
      {"baseline-r2", 2, false, nullptr},
      {"baseline-r1", 1, false, nullptr},
      {"churn-r2", 2, true, "baseline-r2"},
      {"churn-r1", 1, true, "baseline-r1"},
  };
  std::map<std::string, double> pfs_bytes_by_arm;

  // job index -> per-epoch digests of the baseline arm.
  std::map<int, std::vector<std::uint64_t>> reference_digests;

  for (const Arm& arm : kArms) {
    dlsim::ClusterConfig config;
    config.num_jobs = kJobs;
    config.use_monarch = true;
    config.peer_sharing = true;
    config.peer_replication = arm.replication;
    config.dataset = dataset;
    config.model = dlsim::ModelProfile::LeNet();
    config.epochs = env.epochs;
    config.local_quota_bytes = static_cast<std::uint64_t>(
        115.0 * scale * static_cast<double>(kMiB));
    config.seed = 5;
    if (arm.churn) {
      config.churn_schedule = schedule;
      // Cap repair pulls at ~1/4 of the interconnect so re-staging never
      // crowds out demand traffic.
      config.restage_bandwidth_bps = config.interconnect_bandwidth_bps / 4;
      // The membership service notices the crash 30ms after the fabric
      // does: survivors dial the dead holder in that window, and the
      // failover rung (r2) or the PFS (r1) absorbs those reads.
      config.churn_detection_lag_us = 30000;
    }

    auto result = dlsim::RunClusterExperiment(
        env.work_dir / "pfs", env.work_dir / arm.key, config);
    if (!result.ok()) {
      std::cerr << "churn run failed: " << result.status() << "\n";
      return 1;
    }
    const dlsim::ClusterResult& run = result.value();

    // Byte-identical consumption: every job's per-epoch digest must match
    // the churn-free baseline (the gate pauses a trainer, it never drops
    // or substitutes a sample).
    bool digests_match = true;
    for (const auto& job : run.jobs) {
      std::vector<std::uint64_t> digests;
      digests.reserve(job.training.epochs.size());
      for (const auto& epoch : job.training.epochs) {
        digests.push_back(epoch.sample_digest);
      }
      if (reference_digests.count(job.job_index) == 0) {
        reference_digests[job.job_index] = digests;
      } else if (reference_digests[job.job_index] != digests) {
        digests_match = false;
      }
    }

    const double gib = static_cast<double>(1ULL << 30);
    const double pfs_bytes = static_cast<double>(run.TotalPfsReadBytes());
    pfs_bytes_by_arm[arm.key] = pfs_bytes;
    const double pfs_gib = pfs_bytes / gib;
    table.AddRow({arm.key, Table::Num(run.MeanEpochSeconds(), 2),
                  Table::Num(pfs_gib, 3),
                  Table::Num(static_cast<double>(run.peer_bytes) / gib, 3),
                  std::to_string(run.peer_failovers),
                  std::to_string(run.rpc_timeouts),
                  std::to_string(run.restage_completed),
                  std::to_string(run.replication.below_target),
                  digests_match ? "match" : "DIVERGED"});

    const std::string key = arm.key;
    json_metrics.emplace_back(key + ".mean_epoch_s", run.MeanEpochSeconds());
    json_metrics.emplace_back(key + ".pfs_bytes",
                              static_cast<double>(run.TotalPfsReadBytes()));
    json_metrics.emplace_back(key + ".peer_bytes",
                              static_cast<double>(run.peer_bytes));
    json_metrics.emplace_back(key + ".peer_failovers",
                              static_cast<double>(run.peer_failovers));
    json_metrics.emplace_back(key + ".rpc_timeouts",
                              static_cast<double>(run.rpc_timeouts));
    json_metrics.emplace_back(key + ".churn_events",
                              static_cast<double>(run.churn_events_fired));
    json_metrics.emplace_back(key + ".membership_version",
                              static_cast<double>(run.membership_version));
    json_metrics.emplace_back(key + ".restage_enqueued",
                              static_cast<double>(run.restage_enqueued));
    json_metrics.emplace_back(key + ".restage_completed",
                              static_cast<double>(run.restage_completed));
    json_metrics.emplace_back(key + ".restage_queue_end",
                              static_cast<double>(run.restage_queue_end));
    json_metrics.emplace_back(
        key + ".replication_below_target",
        static_cast<double>(run.replication.below_target));
    json_metrics.emplace_back(key + ".replication_files",
                              static_cast<double>(run.replication.files));
    json_metrics.emplace_back(key + ".digests_match",
                              digests_match ? 1.0 : 0.0);
    if (arm.baseline_key != nullptr) {
      // The outage's PFS cost: extra PFS bytes over the churn-free run at
      // the SAME replication factor (so 2x staging cancels out). The r1
      // delta minus the r2 delta is the traffic replica failover kept off
      // the PFS.
      json_metrics.emplace_back(
          key + ".outage_pfs_delta_bytes",
          pfs_bytes - pfs_bytes_by_arm[arm.baseline_key]);
    }
    std::cout << "  done: " << arm.key << "\n";
  }

  table.PrintAscii(std::cout);
  std::cout <<
      "\nReading: compare each churn arm against its same-replication "
      "baseline. churn-r2\nrides out the outage on the second replica — "
      "its PFS delta stays small and the\nrepair pumps restore "
      "replication before the run ends (below_target = 0). churn-r1\n"
      "has no second holder, so the same outage is absorbed by the PFS: "
      "its delta over\nbaseline-r1 is the traffic replica failover keeps "
      "off the PFS. Digests match across\nall arms: churn pauses "
      "trainers, it never changes the bytes they consume.\n";
  WriteBenchJson(env, "ext_churn", {}, json_metrics);
  env.Cleanup();
  return 0;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
