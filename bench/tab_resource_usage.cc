// §II-A / §IV-B resource-usage tables: CPU and GPU utilisation plus peak
// pipeline memory for every setup and model, on both datasets.
//
// Shape targets from the paper (percentages of node CPU / GPU):
//   100 GiB dataset —
//     LeNet:   lustre 30/22, local 57/39, caching 37/28, monarch 44/31
//     AlexNet: lustre 31/58, local 42/72, caching 34/63, monarch 37/68
//     ResNet:  ~10/90 everywhere (compute-bound)
//   200 GiB dataset —
//     LeNet:   lustre 36/30 -> monarch 46/38
//     AlexNet: lustre 31/63 -> monarch 33/69
//     ResNet:  ~9/90 both
//   Memory stays flat across setups (~10 GiB; ours: the prefetch buffer).
//
// The orderings to reproduce: faster storage => higher CPU and GPU
// utilisation for the I/O-bound models; ResNet-50 pinned at high GPU /
// low CPU everywhere; memory flat.
#include <functional>
#include <iostream>

#include "bench_common.h"

namespace monarch::bench {
namespace {

using dlsim::ExperimentConfig;
using dlsim::Setup;

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("tab_resource");
  // Utilisation ratios converge with one repetition; keep this bench fast.
  env.runs = EnvInt("MONARCH_BENCH_RUNS", 1);
  std::cout << "tab_resource_usage: runs=" << env.runs
            << " scale=" << env.scale << " epochs=" << env.epochs << "\n";

  const std::vector<dlsim::ModelProfile> models{
      dlsim::ModelProfile::LeNet(), dlsim::ModelProfile::AlexNet(),
      dlsim::ModelProfile::ResNet50()};

  struct Arm {
    std::string dataset;
    std::string setup;
  };

  std::vector<CellResult> cells;
  std::vector<Arm> arms;

  auto run_cell = [&](const std::string& dataset_name,
                      const workload::DatasetSpec& spec,
                      const std::string& setup_name,
                      const std::function<Result<Setup>(
                          const ExperimentConfig&, int)>& make) -> int {
    for (const auto& model : models) {
      CellResult cell;
      cell.setup = setup_name;
      cell.model = model.name;
      for (int run = 0; run < env.runs; ++run) {
        ExperimentConfig config;
        config.dataset = spec;
        config.model = model;
        config.epochs = env.epochs;
        config.local_quota_bytes = static_cast<std::uint64_t>(
            115.0 * env.scale * static_cast<double>(kMiB));
        config.run_seed = static_cast<std::uint64_t>(7000 + run);
        auto setup = make(config, run);
        if (!setup.ok()) {
          std::cerr << "setup failed: " << setup.status() << "\n";
          return 1;
        }
        auto result = setup.value().trainer->Train();
        if (!result.ok()) {
          std::cerr << "training failed: " << result.status() << "\n";
          return 1;
        }
        cell.Accumulate(result.value(), {}, {}, env.epochs);
      }
      std::cout << "  done: " << dataset_name << " / " << setup_name << " / "
                << model.name << "\n";
      cells.push_back(std::move(cell));
      arms.push_back(Arm{dataset_name, setup_name});
    }
    return 0;
  };

  const auto spec100 = workload::DatasetSpec::ImageNet100GiB(env.scale);
  const auto spec200 = workload::DatasetSpec::ImageNet200GiB(env.scale);
  int rc = 0;
  rc |= run_cell("100GiB", spec100, "vanilla-lustre",
                 [&](const ExperimentConfig& c, int r) {
                   return dlsim::MakeVanillaLustreSetup(
                       env.work_dir / ("pfs100_r" + std::to_string(r)), c);
                 });
  rc |= run_cell("100GiB", spec100, "vanilla-local",
                 [&](const ExperimentConfig& c, int r) {
                   return dlsim::MakeVanillaLocalSetup(
                       env.work_dir / ("pfs100_r" + std::to_string(r)),
                       env.work_dir / ("l_vl" + std::to_string(r)), c);
                 });
  rc |= run_cell("100GiB", spec100, "vanilla-caching",
                 [&](const ExperimentConfig& c, int r) {
                   return dlsim::MakeVanillaCachingSetup(
                       env.work_dir / ("pfs100_r" + std::to_string(r)),
                       env.work_dir /
                           ("l_vc" + c.model.name + std::to_string(r)),
                       c);
                 });
  rc |= run_cell("100GiB", spec100, "monarch",
                 [&](const ExperimentConfig& c, int r) {
                   return dlsim::MakeMonarchSetup(
                       env.work_dir / ("pfs100_r" + std::to_string(r)),
                       env.work_dir /
                           ("l_mn" + c.model.name + std::to_string(r)),
                       c);
                 });
  rc |= run_cell("200GiB", spec200, "vanilla-lustre",
                 [&](const ExperimentConfig& c, int r) {
                   return dlsim::MakeVanillaLustreSetup(
                       env.work_dir / ("pfs200_r" + std::to_string(r)), c);
                 });
  rc |= run_cell("200GiB", spec200, "monarch",
                 [&](const ExperimentConfig& c, int r) {
                   return dlsim::MakeMonarchSetup(
                       env.work_dir / ("pfs200_r" + std::to_string(r)),
                       env.work_dir /
                           ("l2_mn" + c.model.name + std::to_string(r)),
                       c);
                 });
  if (rc != 0) return rc;

  PrintBanner(std::cout,
              "Resource usage (§II-A, §IV-B): CPU%, GPU%, peak memory");
  Table table({"dataset", "setup", "model", "cpu_pct", "gpu_pct",
               "peak_mem_MiB"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    table.AddRow({arms[i].dataset, arms[i].setup, cells[i].model,
                  Table::Num(cells[i].cpu_utilisation.mean() * 100, 1),
                  Table::Num(cells[i].gpu_utilisation.mean() * 100, 1),
                  Table::Num(cells[i].peak_memory_mib.mean(), 1)});
  }
  table.PrintAscii(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);

  std::cout <<
      "\nExpected orderings (paper): for LeNet/AlexNet both CPU%% and "
      "GPU%% rise with faster storage\n(local > monarch > caching > "
      "lustre); ResNet-50 stays ~constant at high GPU / low CPU;\npeak "
      "memory is flat across setups (bounded prefetch buffer).\n";

  WriteBenchJson(env, "tab_resource_usage", cells);
  env.Cleanup();
  return 0;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
