// micro_read_hotpath: the ISSUE-8 acceptance bench for the async
// zero-copy read lane.
//
// An in-memory two-tier MONARCH instance is fully warmed (every file
// staged on the local memory tier), then the same stream of whole-file
// reads is pushed through two arms at 1/8/64 reader threads:
//
//   sync_copy       each reader thread calls Monarch::Read into a
//                   private buffer — the pre-ISSUE-8 hot path, one
//                   memcpy of the whole file per op.
//   async_zero_copy each reader thread submits lease-mode ops to the
//                   ReadRing and blocks on the completion callback —
//                   the bytes are lent (ReadLease over the engine's
//                   pages), never copied.
//
// The acceptance gate (ISSUE 8): at 64 threads the async zero-copy arm
// must serve >= 2x the sync copying arm's reads/sec, and at 1 thread
// its p99 latency must be no worse. Exit code 1 when the gate fails so
// CI can enforce it; BENCH_read_hotpath.json carries the numbers.
//
// Knobs: MONARCH_BENCH_HOTPATH_OPS   total ops per sweep point (default 2048)
//        MONARCH_BENCH_HOTPATH_BYTES file size in bytes (default 1 MiB)
//        MONARCH_BENCH_HOTPATH_FILES staged files (default 8)

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/monarch.h"
#include "core/read_ring.h"
#include "storage/memory_engine.h"
#include "util/status.h"

namespace monarch::bench {
namespace {

struct HotpathSetup {
  std::unique_ptr<core::Monarch> monarch;
  std::vector<std::string> names;
  std::size_t file_bytes = 0;
};

HotpathSetup BuildWarmInstance(int files, std::size_t file_bytes) {
  auto pfs = std::make_shared<storage::MemoryEngine>("bench-pfs");
  HotpathSetup setup;
  setup.file_bytes = file_bytes;
  for (int i = 0; i < files; ++i) {
    std::vector<std::byte> payload(file_bytes);
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::byte>(
          (j * 31 + static_cast<std::size_t>(i)) & 0xFF);
    }
    const std::string name = "data/f" + std::to_string(i) + ".bin";
    if (const Status status = pfs->Write(name, payload); !status.ok()) {
      std::cerr << "read_hotpath: " << status << "\n";
      std::exit(2);
    }
    setup.names.push_back(name);
  }

  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{
      "bench-local", std::make_shared<storage::MemoryEngine>("bench-local"),
      /*quota_bytes=*/static_cast<std::uint64_t>(files + 1) * file_bytes});
  config.pfs = core::TierSpec{"bench-pfs", std::move(pfs), 0};
  config.dataset_dir = "data";
  auto monarch = core::Monarch::Create(std::move(config));
  if (!monarch.ok()) {
    std::cerr << "read_hotpath: " << monarch.status() << "\n";
    std::exit(2);
  }
  setup.monarch = std::move(monarch).value();

  // Warm pass: demand-read every file and drain so the whole dataset is
  // staged on the local tier before either arm starts.
  std::vector<std::byte> buf(file_bytes);
  for (const std::string& name : setup.names) {
    if (auto read = setup.monarch->Read(name, 0, buf); !read.ok()) {
      std::cerr << "read_hotpath: warm read failed: " << read.status() << "\n";
      std::exit(2);
    }
  }
  setup.monarch->DrainPlacements();
  return setup;
}

SweepPoint RunSyncCopyPoint(HotpathSetup& setup, int threads,
                            int ops_per_thread) {
  return RunThreadSweepPoint(threads, ops_per_thread, [&](int t, int i) {
    thread_local std::vector<std::byte> buf;
    buf.resize(setup.file_bytes);
    const std::string& name =
        setup.names[static_cast<std::size_t>(t * ops_per_thread + i) %
                    setup.names.size()];
    if (auto read = setup.monarch->Read(name, 0, buf); !read.ok()) {
      std::cerr << "read_hotpath: sync read failed: " << read.status() << "\n";
      std::exit(2);
    }
  });
}

SweepPoint RunAsyncZeroCopyPoint(HotpathSetup& setup, int threads,
                                 int ops_per_thread) {
  core::ReadRing& ring = setup.monarch->read_ring();
  return RunThreadSweepPoint(threads, ops_per_thread, [&](int t, int i) {
    std::promise<core::ReadCompletion> done;
    std::future<core::ReadCompletion> future = done.get_future();
    std::vector<core::ReadOp> ops(1);
    ops[0].name = setup.names[static_cast<std::size_t>(t * ops_per_thread + i) %
                              setup.names.size()];
    ops[0].lease = true;
    if (ring.Submit(std::move(ops), [&done](core::ReadCompletion c) {
          done.set_value(std::move(c));
        }) != 1) {
      std::cerr << "read_hotpath: ring refused the op\n";
      std::exit(2);
    }
    core::ReadCompletion completion = future.get();
    if (!completion.bytes.ok() ||
        completion.lease.size() != setup.file_bytes) {
      std::cerr << "read_hotpath: async read failed\n";
      std::exit(2);
    }
  });
}

void PrintSweepTable(const std::string& arm,
                     const std::vector<SweepPoint>& points) {
  Table table({"arm", "threads", "ops", "ops_per_sec", "p50_us", "p99_us",
               "p999_us"});
  for (const SweepPoint& point : points) {
    table.AddRow({arm, std::to_string(point.threads),
                  std::to_string(point.ops),
                  Table::Num(point.ops_per_sec, 0),
                  std::to_string(point.latency.p50_us),
                  std::to_string(point.latency.p99_us),
                  std::to_string(point.latency.p999_us)});
  }
  table.PrintAscii(std::cout);
}

void AppendPointsJson(std::ostringstream& json, const std::string& arm,
                      const std::vector<SweepPoint>& points, bool& first) {
  for (const SweepPoint& point : points) {
    json << (first ? "" : ",") << "\n    {\"arm\": " << obs::JsonQuote(arm)
         << ", \"threads\": " << point.threads << ", \"ops\": " << point.ops
         << ", \"ops_per_sec\": " << JsonNum(point.ops_per_sec)
         << ", \"p50_us\": " << point.latency.p50_us
         << ", \"p99_us\": " << point.latency.p99_us
         << ", \"p999_us\": " << point.latency.p999_us << "}";
    first = false;
  }
}

int Run() {
  const int total_ops = EnvInt("MONARCH_BENCH_HOTPATH_OPS", 2048);
  const int file_bytes = EnvInt("MONARCH_BENCH_HOTPATH_BYTES", 1 << 20);
  const int files = EnvInt("MONARCH_BENCH_HOTPATH_FILES", 8);
  const std::vector<int> thread_counts{1, 8, 64};

  PrintBanner(std::cout,
              "micro_read_hotpath: sync copy vs async zero-copy reads (" +
                  std::to_string(files) + " x " +
                  FormatByteSize(static_cast<std::uint64_t>(file_bytes)) +
                  " staged in memory)");

  HotpathSetup setup =
      BuildWarmInstance(files, static_cast<std::size_t>(file_bytes));

  std::vector<SweepPoint> sync_points;
  std::vector<SweepPoint> async_points;
  for (const int threads : thread_counts) {
    const int ops_per_thread = std::max(1, total_ops / threads);
    sync_points.push_back(RunSyncCopyPoint(setup, threads, ops_per_thread));
    async_points.push_back(
        RunAsyncZeroCopyPoint(setup, threads, ops_per_thread));
  }

  PrintSweepTable("sync_copy", sync_points);
  PrintSweepTable("async_zero_copy", async_points);

  const SweepPoint& sync_1t = sync_points.front();
  const SweepPoint& async_1t = async_points.front();
  const SweepPoint& sync_64t = sync_points.back();
  const SweepPoint& async_64t = async_points.back();
  const double speedup_64t =
      sync_64t.ops_per_sec > 0 ? async_64t.ops_per_sec / sync_64t.ops_per_sec
                               : 0;
  const auto ring_stats = setup.monarch->read_ring().Stats();

  // The acceptance gate: >= 2x reads/sec at 64 threads, p99 no worse at
  // one thread, and every async op actually took the zero-copy lane.
  const bool throughput_ok = speedup_64t >= 2.0;
  const bool p99_ok = async_1t.latency.p99_us <= sync_1t.latency.p99_us;
  const bool lane_ok = ring_stats.copy_reads == 0 &&
                       ring_stats.zero_copy_reads >= async_64t.ops;

  std::cout << "\nspeedup at 64 threads: " << Table::Num(speedup_64t, 2)
            << "x (gate >= 2x)  p99 at 1 thread: async="
            << async_1t.latency.p99_us << "us sync=" << sync_1t.latency.p99_us
            << "us  zero-copy hit rate: "
            << Table::Num(100.0 * ring_stats.zero_copy_hit_rate(), 1) << "%\n"
            << (throughput_ok && p99_ok && lane_ok ? "GATE PASS" : "GATE FAIL")
            << "\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"read_hotpath\",\n  \"file_bytes\": " << file_bytes
       << ",\n  \"files\": " << files << ",\n  \"points\": [";
  bool first = true;
  AppendPointsJson(json, "sync_copy", sync_points, first);
  AppendPointsJson(json, "async_zero_copy", async_points, first);
  json << "\n  ],\n  \"metrics\": {\"speedup_64t\": " << JsonNum(speedup_64t)
       << ", \"sync_p99_us_1t\": " << sync_1t.latency.p99_us
       << ", \"async_p99_us_1t\": " << async_1t.latency.p99_us
       << ", \"zero_copy_hit_rate\": "
       << JsonNum(ring_stats.zero_copy_hit_rate())
       << ", \"gate_pass\": " << ((throughput_ok && p99_ok && lane_ok) ? 1 : 0)
       << "}\n}\n";

  const std::filesystem::path path = BenchJsonPath("read_hotpath");
  std::ofstream out(path);
  out << json.str();
  if (!out) {
    std::cerr << "bench-json: failed to write " << path << "\n";
    return 2;
  }
  std::cout << "bench-json: wrote " << path.string() << "\n";

  setup.monarch->Shutdown();
  return throughput_ok && p99_ok && lane_ok ? 0 : 1;
}

}  // namespace
}  // namespace monarch::bench

int main() { return monarch::bench::Run(); }
