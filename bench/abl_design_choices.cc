// Ablations over MONARCH's design choices (§III-A/B), measuring each of
// the decisions the paper argues for:
//
//   A1 full-file fetch on partial reads  — ON (paper) vs OFF: with the
//      64 KiB chunked reads TensorFlow issues, OFF means record files
//      never stage from partial reads, so every epoch keeps hammering
//      the PFS.
//   A2 placement-pool width — the paper configures 6 threads; sweep
//      1/2/6/12 and watch epoch-1 time and time-to-fully-staged.
//   A3 eviction — the paper deliberately never evicts under random
//      per-epoch access; the LRU-eviction arm shows the tier-to-tier
//      churn ("I/O trashing") replacement would add when the dataset
//      exceeds the cache.
//
// One model (LeNet, the most I/O-bound) keeps the runtime small.
#include <iostream>

#include "bench_common.h"
#include "core/placement_policy.h"
#include "dlsim/monarch_opener.h"
#include "storage/engine_factory.h"

namespace monarch::bench {
namespace {

using dlsim::ExperimentConfig;

struct AblationArm {
  std::string name;
  bool fetch_full_file = true;
  int placement_threads = 6;
  bool enable_eviction = false;
  bool partial_dataset = false;  ///< use the 200 GiB-scale dataset
  bool prestage = false;         ///< §III-A option (i): stage before training
};

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment("ablation");
  env.runs = EnvInt("MONARCH_BENCH_RUNS", 1);
  std::cout << "abl_design_choices: runs=" << env.runs
            << " scale=" << env.scale << " epochs=" << env.epochs << "\n";

  const std::vector<AblationArm> arms{
      {"baseline (paper: full-fetch, 6 threads, no eviction)"},
      {"A1: no full-file fetch", false, 6, false, false},
      {"A2: 1 placement thread", true, 1, false, false},
      {"A2: 2 placement threads", true, 2, false, false},
      {"A2: 12 placement threads", true, 12, false, false},
      {"A3: baseline on partial dataset", true, 6, false, true},
      {"A3: LRU eviction on partial dataset", true, 6, true, true},
      {"A4: pre-stage before training", true, 6, false, false, true},
  };

  PrintBanner(std::cout, "Design-choice ablations (LeNet)");
  Table table({"arm", "prestage_s", "total_s", "epoch1_s", "steady_epoch_s",
               "pfs_reads", "pfs_MiB", "placed", "evictions",
               "tier_writes"});
  std::vector<std::pair<std::string, double>> json_metrics;

  for (const AblationArm& arm : arms) {
    RunningSummary total_s;
    RunningSummary epoch1_s;
    RunningSummary steady_s;
    RunningSummary pfs_reads;
    RunningSummary placed;
    RunningSummary evictions;
    RunningSummary tier_writes;
    RunningSummary pfs_mib;     ///< bytes pulled from the PFS, in MiB
    RunningSummary prestage_s;  ///< time spent staging before training

    for (int run = 0; run < env.runs; ++run) {
      ExperimentConfig config;
      config.dataset = arm.partial_dataset
                           ? workload::DatasetSpec::ImageNet200GiB(env.scale)
                           : workload::DatasetSpec::ImageNet100GiB(env.scale);
      config.model = dlsim::ModelProfile::LeNet();
      config.epochs = env.epochs;
      config.local_quota_bytes = static_cast<std::uint64_t>(
          115.0 * env.scale * static_cast<double>(kMiB));
      config.run_seed = static_cast<std::uint64_t>(9000 + run);
      config.placement_threads = arm.placement_threads;

      // MakeMonarchSetup does not expose every placement option, so wire
      // the middleware manually for the ablation arms.
      auto manifest = dlsim::EnsureDataset(
          env.work_dir / ("pfs" + std::to_string(run) +
                          (arm.partial_dataset ? "b" : "a")),
          config.dataset);
      if (!manifest.ok()) {
        std::cerr << "dataset failed: " << manifest.status() << "\n";
        return 1;
      }
      const auto pfs_root = env.work_dir / ("pfs" + std::to_string(run) +
                                            (arm.partial_dataset ? "b" : "a"));
      auto pfs_engine =
          storage::MakeLustreEngine(pfs_root, config.run_seed, true);
      auto local_engine = storage::MakeLocalSsdEngine(
          env.work_dir / ("local_" + std::to_string(&arm - arms.data()) +
                          "_r" + std::to_string(run)));

      core::MonarchConfig monarch_config;
      monarch_config.cache_tiers.push_back(core::TierSpec{
          "local-ssd", local_engine, config.local_quota_bytes});
      monarch_config.pfs = core::TierSpec{"lustre", pfs_engine, 0};
      monarch_config.dataset_dir = config.dataset.directory;
      monarch_config.placement.num_threads = arm.placement_threads;
      monarch_config.placement.fetch_full_file_on_partial_read =
          arm.fetch_full_file;
      monarch_config.placement.enable_eviction = arm.enable_eviction;
      auto monarch = core::Monarch::Create(std::move(monarch_config));
      if (!monarch.ok()) {
        std::cerr << "monarch failed: " << monarch.status() << "\n";
        return 1;
      }

      // Interval baselines: diff two Snapshots around the measured phase
      // (metadata init and dataset generation don't count; prestaging
      // does). Reset() would be unsafe here — see io_stats.h.
      const auto pfs_before = pfs_engine->Stats().Snapshot();
      const auto local_before = local_engine->Stats().Snapshot();

      dlsim::TrainerConfig tc;
      tc.model = config.model;
      tc.epochs = config.epochs;
      tc.batch_size = config.batch_size;
      tc.num_gpus = config.num_gpus;
      tc.loader.reader_threads = config.reader_threads;
      tc.loader.read_chunk_bytes = config.read_chunk_bytes;
      tc.loader.shuffle_seed = config.run_seed;
      if (arm.prestage) {
        const Stopwatch stage_timer;
        monarch.value()->Prestage(/*block=*/true);
        prestage_s.Add(stage_timer.ElapsedSeconds());
      }

      dlsim::Trainer trainer(
          manifest.value().file_paths,
          std::make_unique<dlsim::MonarchOpener>(*monarch.value()), tc);
      auto result = trainer.Train();
      if (!result.ok()) {
        std::cerr << "training failed: " << result.status() << "\n";
        return 1;
      }
      monarch.value()->DrainPlacements();

      const auto stats = monarch.value()->Stats();
      total_s.Add(result.value().total_seconds);
      epoch1_s.Add(result.value().EpochSeconds(1));
      double steady = 0;
      for (int e = 2; e <= env.epochs; ++e) {
        steady += result.value().EpochSeconds(e);
      }
      steady_s.Add(steady / std::max(1, env.epochs - 1));
      pfs_reads.Add(static_cast<double>(stats.pfs_reads()));
      pfs_mib.Add(
          static_cast<double>(
              (pfs_engine->Stats().Snapshot() - pfs_before).bytes_read) /
          static_cast<double>(kMiB));
      placed.Add(static_cast<double>(stats.placement.completed));
      evictions.Add(static_cast<double>(stats.placement.evictions));
      tier_writes.Add(static_cast<double>(
          (local_engine->Stats().Snapshot() - local_before).write_ops));
    }

    table.AddRow({arm.name,
                  arm.prestage ? MeanSd(prestage_s) : std::string("-"),
                  MeanSd(total_s), MeanSd(epoch1_s), MeanSd(steady_s),
                  MeanSd(pfs_reads, 0), MeanSd(pfs_mib, 1),
                  MeanSd(placed, 0), MeanSd(evictions, 0),
                  MeanSd(tier_writes, 0)});
    json_metrics.emplace_back(arm.name + ".total_s", total_s.mean());
    json_metrics.emplace_back(arm.name + ".epoch1_s", epoch1_s.mean());
    json_metrics.emplace_back(arm.name + ".pfs_reads", pfs_reads.mean());
    json_metrics.emplace_back(arm.name + ".evictions", evictions.mean());
    std::cout << "  done: " << arm.name << "\n";
  }

  table.PrintAscii(std::cout);
  std::cout <<
      "\nReadings: A1-OFF leaves steady-state epochs at vanilla-lustre "
      "speed (nothing stages from\n64 KiB chunk reads). A2: a 1-thread "
      "pool stages slower, stretching the time until reads\nshift to the "
      "local tier; beyond ~6 threads the PFS bandwidth is the limit. A3: "
      "eviction\nturns the cache into a churn pump — several times the "
      "tier writes and more bytes pulled\nfrom the PFS every epoch (the "
      "paper's 'I/O trashing'); any wall-clock win it shows here\ncomes "
      "from the full-file fetch converting chunked PFS reads into "
      "streaming ones, at the\ncost of sustained PFS/byte pressure that "
      "a shared cluster pays for. A4: pre-staging\nmoves epoch-1's "
      "staging cost in front of training; total time-to-trained-model "
      "is the\nsame or worse, which is why the paper places during "
      "epoch 1.\n";
  WriteBenchJson(env, "abl_design_choices", {}, json_metrics);
  env.Cleanup();
  return 0;
}

}  // namespace
}  // namespace monarch::bench

int main(int argc, char** argv) {
  const monarch::bench::TraceOutGuard trace(argc, argv);
  return monarch::bench::Run();
}
